package sparse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// freezeXoverBucket drives one bucket through its probe phase with timings
// that make `winner` win, leaving it frozen.
func freezeXoverBucket(t *testing.T, op XoverOp, m, k, n, nnz, full int, winner XoverChoice) {
	t.Helper()
	for i := 0; i < 2*xoverProbeRuns; i++ {
		e, c, probe := XoverDecide(op, m, k, n, nnz, full)
		if !probe {
			if c != winner {
				t.Fatalf("bucket froze to %v before probing finished, want %v", c, winner)
			}
			return
		}
		d := time.Millisecond
		if c != winner {
			d = 10 * time.Millisecond
		}
		e.Record(c, d, m*k*n)
	}
}

// TestXoverTableRoundTrip pins the persistence contract: frozen decisions
// survive a save/reset/load cycle and pre-seed their buckets (no re-probe),
// while buckets still probing are not persisted.
func TestXoverTableRoundTrip(t *testing.T) {
	t.Setenv("SAMO_SPARSE_XOVER_TABLE", "off") // keep background saves away
	ResetXover()
	defer ResetXover()
	if prev, err := SetXover("auto"); err != nil {
		t.Fatal(err)
	} else {
		defer SetXover(prev)
	}

	freezeXoverBucket(t, XoverOpForward, 64, 128, 128, 1638, 128*128, XoverSparse)
	freezeXoverBucket(t, XoverOpBackward, 64, 128, 128, 1638, 128*128, XoverDense)
	// One bucket left mid-probe: must not appear in the file.
	if _, _, probe := XoverDecide(XoverOpForward, 64, 128, 128, 8192, 128*128); !probe {
		t.Fatal("expected an undecided bucket")
	}

	path := filepath.Join(t.TempDir(), "sparse_xover.json")
	if err := SaveXoverTable(path); err != nil {
		t.Fatal(err)
	}

	ResetXover()
	if err := LoadXoverTable(path); err != nil {
		t.Fatal(err)
	}
	if _, c, probe := XoverDecide(XoverOpForward, 64, 128, 128, 1638, 128*128); probe || c != XoverSparse {
		t.Fatalf("loaded forward bucket: choice=%v probe=%v, want frozen sparse", c, probe)
	}
	if _, c, probe := XoverDecide(XoverOpBackward, 64, 128, 128, 1638, 128*128); probe || c != XoverDense {
		t.Fatalf("loaded backward bucket: choice=%v probe=%v, want frozen dense", c, probe)
	}
	// The mid-probe bucket was not persisted: still probing after the load.
	if _, _, probe := XoverDecide(XoverOpForward, 64, 128, 128, 8192, 128*128); !probe {
		t.Fatal("undecided bucket leaked into the persisted table")
	}
}

// TestXoverFlushDirtyDiscipline pins when FlushXoverTable writes: never for
// a table holding only disk-loaded (or no) decisions, always after a bucket
// froze in this process, and only once per freeze.
func TestXoverFlushDirtyDiscipline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sparse_xover.json")
	t.Setenv("SAMO_SPARSE_XOVER_TABLE", path)
	ResetXover()
	defer ResetXover()
	if prev, err := SetXover("auto"); err != nil {
		t.Fatal(err)
	} else {
		defer SetXover(prev)
	}

	if err := FlushXoverTable(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("flush of a clean table must not create the file")
	}

	freezeXoverBucket(t, XoverOpForward, 64, 128, 128, 1638, 128*128, XoverSparse)
	if err := FlushXoverTable(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("flush after a freeze must write the table: %v", err)
	}

	// Clean again: a second flush must not resurrect a removed file —
	// loaded-only tables never overwrite another process's save.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := FlushXoverTable(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("flush with nothing new must be a no-op")
	}
}

// TestCorruptXoverTableQuarantined mirrors the GEMM tuner's contract: a
// damaged persisted table is renamed to .corrupt, reported once, and the
// process continues with an empty (re-probing) table.
func TestCorruptXoverTableQuarantined(t *testing.T) {
	ResetXover()
	defer ResetXover()
	dir := t.TempDir()
	path := filepath.Join(dir, "sparse_xover.json")

	if err := os.WriteFile(path, []byte(`{"entries":[{"op":0,`), 0o644); err != nil {
		t.Fatal(err)
	}
	msg := startupLoadXoverTable(path, true)
	if !strings.Contains(msg, "quarantined") {
		t.Fatalf("startup load of truncated table: %q, want quarantine message", msg)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt table still in place: next startup would trip on it again")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if msg := startupLoadXoverTable(path, true); msg != "" {
		t.Fatalf("startup after quarantine must be silent, got %q", msg)
	}
}

func TestMissingXoverTableIsSilent(t *testing.T) {
	ResetXover()
	defer ResetXover()
	path := filepath.Join(t.TempDir(), "absent.json")
	for _, explicit := range []bool{false, true} {
		if msg := startupLoadXoverTable(path, explicit); msg != "" {
			t.Fatalf("missing table (explicit=%v) must be silent, got %q", explicit, msg)
		}
	}
}

// TestXoverPathOff pins the opt-out: SAMO_SPARSE_XOVER_TABLE=off disables
// persistence entirely.
func TestXoverPathOff(t *testing.T) {
	t.Setenv("SAMO_SPARSE_XOVER_TABLE", "off")
	if p := XoverPath(); p != "" {
		t.Fatalf("XoverPath with persistence off = %q, want empty", p)
	}
	if err := FlushXoverTable(); err != nil {
		t.Fatal(err)
	}
}
