package sparse

import (
	"fmt"
	"testing"

	"github.com/sparse-dl/samo/internal/tensor"
)

// randMaskedCSR builds a rows×cols CSR with ~density fraction of entries
// kept, values in (-1, 1), plus the dense tensor it represents.
func randMaskedCSR(rows, cols int, density float64, seed uint64) (*CSR, *tensor.Tensor) {
	rng := tensor.NewRNG(seed)
	d := tensor.New(rows, cols)
	dd := d.Data()
	for i := range dd {
		if rng.Float64() < density {
			v := float32(rng.Float64()*2 - 1)
			if v == 0 {
				v = 0.5 // keep the pattern: exact zeros would be dropped
			}
			dd[i] = v
		}
	}
	return CSRFromDense(d), d
}

func randDense(rows, cols int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	t := tensor.New(rows, cols)
	td := t.Data()
	for i := range td {
		td[i] = float32(rng.Float64()*2 - 1)
	}
	return t
}

// TestSpMMGolden pins SpMM and SpMMInto against the dense reference
// S_dense·B computed by tensor.MatMul, over shapes that cross the
// csrRowGrain chunking in both directions (few heavy rows, many light
// rows) and degenerate n=1.
func TestSpMMGolden(t *testing.T) {
	for _, s := range [][3]int{{7, 9, 5}, {64, 48, 32}, {130, 65, 1}, {33, 129, 17}} {
		rows, cols, n := s[0], s[1], s[2]
		for _, density := range []float64{0.05, 0.3, 0.9} {
			t.Run(fmt.Sprintf("%dx%dx%d/d%.2f", rows, cols, n, density), func(t *testing.T) {
				m, dense := randMaskedCSR(rows, cols, density, uint64(rows*1000+n))
				b := randDense(cols, n, uint64(cols))
				want := tensor.MatMul(dense, b)
				got := m.SpMM(b)
				if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
					t.Fatalf("SpMM differs from dense by %g", d)
				}
				// Into with a dirty buffer must fully overwrite it.
				into := tensor.New(rows, n)
				into.Fill(42)
				m.SpMMInto(into, b)
				if d := tensor.MaxAbsDiff(into, want); d > 1e-4 {
					t.Fatalf("SpMMInto differs from dense by %g", d)
				}
			})
		}
	}
}

// TestSDDMMGolden pins SDDMM and SDDMMInto against the dense reference:
// out values must equal (A·Bᵀ) sampled at the mask pattern.
func TestSDDMMGolden(t *testing.T) {
	for _, s := range [][3]int{{7, 9, 5}, {64, 48, 32}, {130, 65, 3}, {33, 129, 17}} {
		rows, cols, k := s[0], s[1], s[2]
		for _, density := range []float64{0.05, 0.3, 0.9} {
			t.Run(fmt.Sprintf("%dx%dx%d/d%.2f", rows, cols, k, density), func(t *testing.T) {
				m, _ := randMaskedCSR(rows, cols, density, uint64(rows*77+k))
				a := randDense(rows, k, uint64(rows))
				b := randDense(cols, k, uint64(cols))
				want := tensor.MatMulT(a, b) // (rows, cols) dense A·Bᵀ
				out := m.SDDMM(a, b)
				for i := 0; i < m.Rows; i++ {
					for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
						w := want.At(i, int(m.ColIdx[p]))
						if d := out.Val[p] - w; d > 1e-4 || d < -1e-4 {
							t.Fatalf("SDDMM val (%d,%d): %g want %g", i, m.ColIdx[p], out.Val[p], w)
						}
					}
				}
				vals := make([]float32, m.NNZ())
				m.SDDMMInto(vals, a, b, false)
				for p, v := range out.Val {
					if vals[p] != v {
						t.Fatalf("SDDMMInto diverges from SDDMM at %d: %g vs %g", p, vals[p], v)
					}
				}
				// The accumulating form adds the same product on top.
				m.SDDMMInto(vals, a, b, true)
				for p, v := range out.Val {
					if vals[p] != 2*v {
						t.Fatalf("SDDMMInto(acc) at %d: %g want %g", p, vals[p], 2*v)
					}
				}
			})
		}
	}
}

// TestSpMMTGolden pins the transposed-CSR SpMM — C = B·Sᵀ, the product the
// sparse FC forward and input-gradient passes take — against the dense
// reference tensor.MatMulT(B, S_dense), over shapes crossing the row-grain
// chunking and degenerate n=1.
func TestSpMMTGolden(t *testing.T) {
	for _, s := range [][3]int{{7, 9, 5}, {64, 48, 32}, {130, 65, 1}, {33, 129, 17}} {
		rows, cols, n := s[0], s[1], s[2]
		for _, density := range []float64{0.05, 0.3, 0.9} {
			t.Run(fmt.Sprintf("%dx%dx%d/d%.2f", rows, cols, n, density), func(t *testing.T) {
				m, dense := randMaskedCSR(rows, cols, density, uint64(rows*31+n))
				b := randDense(n, cols, uint64(cols+1))
				want := tensor.MatMulT(b, dense) // (n, rows)
				got := m.SpMMT(b)
				if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
					t.Fatalf("SpMMT differs from dense by %g", d)
				}
				// Into with a dirty buffer must fully overwrite it.
				into := tensor.New(n, rows)
				into.Fill(42)
				m.SpMMTInto(into, b)
				if d := tensor.MaxAbsDiff(into, want); d > 1e-4 {
					t.Fatalf("SpMMTInto differs from dense by %g", d)
				}
			})
		}
	}
}

// TestTransposePermAndLinearIDs pins the structure helpers the cached-
// transpose refresh and the dense-masked materialization rely on:
// TransposePerm's permutation must reproduce the transpose's values from
// the primary's (so a value-only Gather refresh is exact), and LinearIDs
// must be the strictly increasing row-major ids of the pattern (so it is a
// valid IndexFromSlice input whose Expand rebuilds Dense()).
func TestTransposePermAndLinearIDs(t *testing.T) {
	m, _ := randMaskedCSR(23, 17, 0.3, 99)
	wt, perm := m.TransposePerm()
	ref := m.Transpose()
	for p := range ref.Val {
		if wt.ColIdx[p] != ref.ColIdx[p] || wt.Val[p] != ref.Val[p] {
			t.Fatalf("TransposePerm structure diverges from Transpose at %d", p)
		}
		if got := m.Val[perm[p]]; got != ref.Val[p] {
			t.Fatalf("perm[%d]: primary value %g, want %g", p, got, ref.Val[p])
		}
	}
	// A refresh after mutating the primary values must track exactly.
	for i := range m.Val {
		m.Val[i] *= 2
	}
	Gather(wt.Val, m.Val, perm)
	ref2 := m.Transpose()
	for p := range ref2.Val {
		if wt.Val[p] != ref2.Val[p] {
			t.Fatalf("refreshed transpose value %d: %g want %g", p, wt.Val[p], ref2.Val[p])
		}
	}

	ids := m.LinearIDs()
	ix := IndexFromSlice(ids, m.Rows*m.Cols) // panics if not sorted unique
	back := tensor.New(m.Rows, m.Cols)
	ix.Expand(back.Data(), m.Val)
	if d := tensor.MaxAbsDiff(back, m.Dense()); d != 0 {
		t.Fatalf("LinearIDs scatter does not rebuild Dense(): diff %g", d)
	}
}

// TestCSRRowGrain sanity-checks the reasoned chunking: heavy rows shrink
// the grain toward 1, light rows grow it so a chunk still holds ~ixGrain
// scalar ops.
func TestCSRRowGrain(t *testing.T) {
	if g := csrRowGrain(100, 100*ixGrain); g != 1 {
		t.Errorf("heavy rows: grain %d, want 1", g)
	}
	if g := csrRowGrain(1000, 1000); g < 100 {
		t.Errorf("light rows: grain %d, want large", g)
	}
	if g := csrRowGrain(0, 0); g != 1 {
		t.Errorf("degenerate: grain %d, want 1", g)
	}
}
