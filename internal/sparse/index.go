package sparse

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/fp16"
	"github.com/sparse-dl/samo/internal/parallel"
)

// Index is the shared, linearized non-zero index tensor of one layer
// (Section III-B). Two design decisions from the paper are load-bearing and
// reproduced exactly:
//
//  1. All compressed model states of a layer (θ32, ∇θ16, ∇θ32, os) share ONE
//     Index — storing it once instead of four times is what keeps the index
//     overhead at 4fφ bytes rather than 16fφ.
//  2. Indices address a hypothetical one-dimensional view of the state
//     tensor, so an N-dimensional tensor needs one int32 per non-zero instead
//     of N — an N× saving.
type Index struct {
	ids  []int32 // sorted ascending, unique
	full int     // number of elements in the uncompressed 1-D view
}

// NewIndex builds an Index from a mask.
func NewIndex(m *Mask) *Index {
	return &Index{ids: m.Indices(), full: m.Len()}
}

// IndexFromSlice builds an Index directly from sorted unique linearized ids.
func IndexFromSlice(ids []int32, full int) *Index {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			panic("sparse: index ids must be sorted and unique")
		}
	}
	if len(ids) > 0 && (ids[0] < 0 || int(ids[len(ids)-1]) >= full) {
		panic(fmt.Sprintf("sparse: index ids out of range [0,%d)", full))
	}
	return &Index{ids: append([]int32(nil), ids...), full: full}
}

// NNZ returns the number of unpruned (stored) elements.
func (ix *Index) NNZ() int { return len(ix.ids) }

// FullLen returns the length of the uncompressed 1-D view.
func (ix *Index) FullLen() int { return ix.full }

// IDs returns the underlying index slice (not to be modified).
func (ix *Index) IDs() []int32 { return ix.ids }

// Bytes returns the memory footprint of the index itself: 4 bytes per
// non-zero (the 4fφ term of the paper's memory model).
func (ix *Index) Bytes() int64 { return int64(len(ix.ids)) * 4 }

// Clone returns an independent copy. Gradual pruning shrinks a state's
// index in place, so every state that may shrink owns its own copy (as
// every GPU stores its own ind tensor) while the pruning result's indices
// stay immutable.
func (ix *Index) Clone() *Index {
	return &Index{ids: append([]int32(nil), ix.ids...), full: ix.full}
}

// ShrinkTo drops the ids at positions where keep is false, compacting the
// survivors leftward in place — NNZ only ever decreases under gradual
// pruning, so the backing array is reused, never reallocated. keep is in
// stored (ascending id) order; the result stays sorted and unique.
func (ix *Index) ShrinkTo(keep []bool) {
	if len(keep) != len(ix.ids) {
		panic(fmt.Sprintf("sparse: ShrinkTo keep length %d, want %d", len(keep), len(ix.ids)))
	}
	w := 0
	for i, k := range keep {
		if k {
			ix.ids[w] = ix.ids[i]
			w++
		}
	}
	ix.ids = ix.ids[:w]
}

// ixJob carries a compress/expand call's arguments to the worker pool.
// Recycled through a parallel.Pool so the calls stay allocation-free (they
// sit on the per-layer gradient-capture path, run once per microbatch).
type ixJob struct {
	ids        []int32
	dst, dense []float32
}

var ixJobFree parallel.Pool[ixJob]

func getIxJob() *ixJob { return ixJobFree.Get() }

func putIxJob(j *ixJob) {
	j.ids, j.dst, j.dense = nil, nil, nil
	ixJobFree.Put(j)
}

// ixGrain is the minimum elements per parallel chunk for gather/scatter
// loops (they are memory-bound; small chunks are all dispatch overhead).
const ixGrain = 16384

func compressChunk(ctx any, lo, hi int) {
	j := ctx.(*ixJob)
	ids, dst, dense := j.ids, j.dst, j.dense
	for i := lo; i < hi; i++ {
		dst[i] = dense[ids[i]]
	}
}

func zeroChunk(ctx any, lo, hi int) {
	d := ctx.(*ixJob).dense
	for i := lo; i < hi; i++ {
		d[i] = 0
	}
}

func expandChunk(ctx any, lo, hi int) {
	j := ctx.(*ixJob)
	ids, dst, dense := j.ids, j.dst, j.dense
	for i := lo; i < hi; i++ {
		dense[ids[i]] = dst[i]
	}
}

// Compress gathers the unpruned elements of a dense 1-D view into dst,
// which must have NNZ capacity. This is the operation applied to gradients
// at layer granularity during the backward pass. The gather is parallel
// (disjoint dst ranges) and allocation-free.
func (ix *Index) Compress(dst, dense []float32) {
	if len(dense) != ix.full {
		panic(fmt.Sprintf("sparse: Compress dense length %d, want %d", len(dense), ix.full))
	}
	if len(dst) != len(ix.ids) {
		panic(fmt.Sprintf("sparse: Compress dst length %d, want %d", len(dst), len(ix.ids)))
	}
	j := getIxJob()
	j.ids, j.dst, j.dense = ix.ids, dst, dense
	parallel.Run(len(ix.ids), ixGrain, j, compressChunk)
	putIxJob(j)
}

// Expand scatters compressed values back into a dense 1-D view, filling
// pruned positions with zero — the paper's "expansion" operation, the
// inverse of compression, used in the optimizer's down-cast step. Both the
// zero-fill and the scatter are parallel (ids are unique, so scatter writes
// are disjoint) and allocation-free.
func (ix *Index) Expand(dense, compressed []float32) {
	if len(dense) != ix.full {
		panic(fmt.Sprintf("sparse: Expand dense length %d, want %d", len(dense), ix.full))
	}
	if len(compressed) != len(ix.ids) {
		panic(fmt.Sprintf("sparse: Expand compressed length %d, want %d", len(compressed), len(ix.ids)))
	}
	j := getIxJob()
	j.ids, j.dst, j.dense = ix.ids, compressed, dense
	parallel.Run(len(dense), ixGrain, j, zeroChunk)
	parallel.Run(len(ix.ids), ixGrain, j, expandChunk)
	putIxJob(j)
}

// Gather copies dst[i] = src[ids[i]] on the worker pool — the free-standing
// permutation gather behind cached-transpose value refreshes (ids need not
// be sorted or unique, unlike an Index). Parallel over disjoint dst ranges
// and allocation-free.
func Gather(dst, src []float32, ids []int32) {
	if len(dst) != len(ids) {
		panic(fmt.Sprintf("sparse: Gather dst length %d, want %d", len(dst), len(ids)))
	}
	j := getIxJob()
	j.ids, j.dst, j.dense = ids, dst, src
	parallel.Run(len(ids), ixGrain, j, compressChunk)
	putIxJob(j)
}

// ixHalfJob is the fp16 twin of ixJob: the half-precision gather/scatter
// sits on the same per-layer, per-microbatch gradient path as the float32
// one (∇θ16 is the tensor SAMO compresses most often), so it runs on the
// worker pool with pooled dispatch too.
type ixHalfJob struct {
	ids        []int32
	dst, dense []fp16.Bits
}

var ixHalfJobFree parallel.Pool[ixHalfJob]

func compressHalfChunk(ctx any, lo, hi int) {
	j := ctx.(*ixHalfJob)
	ids, dst, dense := j.ids, j.dst, j.dense
	for i := lo; i < hi; i++ {
		dst[i] = dense[ids[i]]
	}
}

func zeroHalfChunk(ctx any, lo, hi int) {
	d := ctx.(*ixHalfJob).dense
	for i := lo; i < hi; i++ {
		d[i] = 0
	}
}

func expandHalfChunk(ctx any, lo, hi int) {
	j := ctx.(*ixHalfJob)
	ids, dst, dense := j.ids, j.dst, j.dense
	for i := lo; i < hi; i++ {
		dense[ids[i]] = dst[i]
	}
}

// CompressHalf gathers unpruned elements of a dense half-precision view.
// Parallel (disjoint dst ranges) and allocation-free, exactly like the
// float32 Compress.
func (ix *Index) CompressHalf(dst, dense []fp16.Bits) {
	if len(dense) != ix.full || len(dst) != len(ix.ids) {
		panic("sparse: CompressHalf size mismatch")
	}
	j := ixHalfJobFree.Get()
	j.ids, j.dst, j.dense = ix.ids, dst, dense
	parallel.Run(len(ix.ids), ixGrain, j, compressHalfChunk)
	j.ids, j.dst, j.dense = nil, nil, nil
	ixHalfJobFree.Put(j)
}

// ExpandHalf scatters compressed half-precision values into a dense view,
// zero-filling pruned positions. Both phases are parallel (ids are unique,
// so scatter writes are disjoint) and allocation-free.
func (ix *Index) ExpandHalf(dense, compressed []fp16.Bits) {
	if len(dense) != ix.full || len(compressed) != len(ix.ids) {
		panic("sparse: ExpandHalf size mismatch")
	}
	j := ixHalfJobFree.Get()
	j.ids, j.dst, j.dense = ix.ids, compressed, dense
	parallel.Run(len(dense), ixGrain, j, zeroHalfChunk)
	parallel.Run(len(ix.ids), ixGrain, j, expandHalfChunk)
	j.ids, j.dst, j.dense = nil, nil, nil
	ixHalfJobFree.Put(j)
}

// Mask reconstructs the boolean mask this index describes.
func (ix *Index) Mask() *Mask {
	return FromIndices(ix.full, ix.ids)
}

// Coords2D converts the linearized ids back to (row, col) coordinates of a
// rows×cols matrix view — needed when building CSR matrices for sparse
// compute baselines. It is the inverse of the 1-D linearization and exists
// to demonstrate (and test) that linearization loses no information.
func (ix *Index) Coords2D(rows, cols int) (r, c []int32) {
	if rows*cols != ix.full {
		panic(fmt.Sprintf("sparse: Coords2D %dx%d != %d", rows, cols, ix.full))
	}
	r = make([]int32, len(ix.ids))
	c = make([]int32, len(ix.ids))
	for i, id := range ix.ids {
		r[i] = id / int32(cols)
		c[i] = id % int32(cols)
	}
	return r, c
}
