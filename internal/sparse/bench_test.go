package sparse

import (
	"fmt"
	"testing"

	"github.com/sparse-dl/samo/internal/tensor"
)

// BenchmarkSpMM is the sparse-vs-dense kernel matrix behind the
// density-aware crossover: the FC forward product y = x·Wᵀ at the paper's
// batch (576) computed by the autotuned dense GEMM over the masked-dense
// weight versus the transposed-CSR SpMM, across the evaluation's sparsity
// range. scripts/bench.sh gates the high-sparsity points (≥90%) at
// MIN_SPMM_SPEEDUP — the whole premise of first-class sparse execution is
// that pruned FLOPs convert to time there — and records the full matrix in
// BENCH_kernels.json; at 50–75% sparsity the dense kernel is allowed to
// win, which is exactly what the crossover exists to detect.
func BenchmarkSpMM(b *testing.B) {
	const batch = 576
	for _, dim := range []int{256, 512} {
		for _, sparsity := range []float64{0.5, 0.75, 0.9, 0.95, 0.99} {
			w, denseW := randMaskedCSR(dim, dim, 1-sparsity, uint64(dim)+uint64(sparsity*100))
			x := randDense(batch, dim, uint64(dim)+1)
			y := tensor.New(batch, dim)
			b.Run(fmt.Sprintf("dense/%dx%.2f", dim, sparsity), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tensor.MatMulTInto(y, x, denseW, false)
				}
			})
			b.Run(fmt.Sprintf("sparse/%dx%.2f", dim, sparsity), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w.SpMMTInto(y, x)
				}
			})
		}
	}
}

// BenchmarkSDDMM times the weight-gradient kernel the sparse backward pass
// always takes (it computes only the surviving entries) against the full
// dense product it replaces. The dense loop is the bare GEMM — the
// masked-dense training path additionally owes a compress over the result,
// so the recorded ratio understates the sparse kernel's end-to-end edge.
func BenchmarkSDDMM(b *testing.B) {
	const batch = 576
	for _, dim := range []int{256, 512} {
		const sparsity = 0.9
		w, _ := randMaskedCSR(dim, dim, 1-sparsity, uint64(dim)+7)
		dyT := randDense(dim, batch, uint64(dim)+2)
		xT := randDense(dim, batch, uint64(dim)+3)
		grad := make([]float32, w.NNZ())
		dW := tensor.New(dim, dim)
		b.Run(fmt.Sprintf("dense/%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulTInto(dW, dyT, xT, false)
			}
		})
		b.Run(fmt.Sprintf("sparse/%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.SDDMMInto(grad, dyT, xT, false)
			}
		})
	}
}
