package sparse

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Crossover persistence. Frozen sparse/dense decisions are machine
// properties exactly like the GEMM tuner's blockings, and a serving process
// is the worst-hit consumer of a cold table: every probe run on the losing
// path is a full-latency request. So decided buckets persist to
// XoverPath() with the same discipline as gemm_tune.json — debounced
// background save on freeze, synchronous FlushXoverTable from the cmds'
// exits, atomic temp-file + rename writes, and a corrupt table quarantined
// to <path>.corrupt at startup.
//
// One consequence the GEMM table does not have: the two crossover paths are
// NOT bitwise-identical, so pre-seeding decisions changes numerics relative
// to a cold run that would have frozen differently. That is the point —
// frozen buckets never re-probe for exactly this reason, and persistence
// extends the same stability across processes: a trained-then-served model
// keeps the training run's execution paths. Runs needing machine-
// independent numerics pin a path (SetXover / SAMO_SPARSE_XOVER) as before,
// which bypasses the table entirely.

// xoverDirty is set when a bucket freezes in THIS process — the in-memory
// table holds a decision the file may lack. Disk-loaded entries do not set
// it, so a process that froze nothing never rewrites (and possibly
// truncates) a concurrent process's save.
var xoverDirty atomic.Bool

// xoverRecord is the persisted form of one decided bucket.
type xoverRecord struct {
	Op     uint8  `json:"op"`
	MB     uint8  `json:"mb"`
	KB     uint8  `json:"kb"`
	NB     uint8  `json:"nb"`
	DB     uint8  `json:"db"`
	Choice string `json:"choice"` // "sparse" or "dense"
}

type xoverFile struct {
	Description string        `json:"description"`
	Entries     []xoverRecord `json:"entries"`
}

// XoverPath resolves where crossover decisions persist: the file named by
// SAMO_SPARSE_XOVER_TABLE if set ("off" disables persistence and returns
// ""), else sparse_xover.json under the samo directory in the user cache
// dir — next to gemm_tune.json. Resolved per call so tests can redirect it
// with a scoped setenv.
func XoverPath() string {
	switch p := os.Getenv("SAMO_SPARSE_XOVER_TABLE"); p {
	case "off":
		return ""
	case "":
		dir, err := os.UserCacheDir()
		if err != nil {
			return ""
		}
		return filepath.Join(dir, "samo", "sparse_xover.json")
	default:
		return p
	}
}

// SaveXoverTable writes every decided bucket to path as JSON via a unique
// temp file and an atomic rename, so concurrent readers never observe a
// partial table. Buckets still probing are skipped.
func SaveXoverTable(path string) error {
	var f xoverFile
	f.Description = "SAMO sparse/dense crossover decisions, keyed by (op, ceil-log2 shape, density band). " +
		"Machine-specific; regenerate after hardware changes."
	xoverTable.mu.RLock()
	for k, e := range xoverTable.m {
		c, ok := e.Decided()
		if !ok {
			continue
		}
		f.Entries = append(f.Entries, xoverRecord{
			Op: uint8(k.op), MB: k.mb, KB: k.kb, NB: k.nb, DB: k.db,
			Choice: c.String()})
	}
	xoverTable.mu.RUnlock()
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".sparse_xover-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// errXoverTableParse marks a table that exists but does not parse — the one
// load failure worth quarantining at startup.
var errXoverTableParse = errors.New("unparseable crossover table")

// LoadXoverTable pre-seeds the crossover from a file written by
// SaveXoverTable: matching buckets skip the probe phase and are frozen to
// the recorded winner. Records with an op or choice this build does not
// know are skipped.
func LoadXoverTable(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f xoverFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("sparse: crossover table %s: %w: %w", path, errXoverTableParse, err)
	}
	xoverTable.mu.Lock()
	if xoverTable.m == nil {
		xoverTable.m = make(map[xoverKey]*XoverEntry)
	}
	for _, r := range f.Entries {
		if XoverOp(r.Op) > XoverOpBackward {
			continue
		}
		var c XoverChoice
		switch r.Choice {
		case "sparse":
			c = XoverSparse
		case "dense":
			c = XoverDense
		default:
			continue
		}
		e := &XoverEntry{}
		e.chosen.Store(int32(c))
		xoverTable.m[xoverKey{XoverOp(r.Op), r.MB, r.KB, r.NB, r.DB}] = e
	}
	xoverTable.mu.Unlock()
	return nil
}

// xoverSave is the debounced background saver, started lazily on the first
// freeze. Callers never allocate (one buffered channel send), keeping the
// freeze path inside the training steps' zero-allocation contract.
var xoverSave struct {
	once sync.Once
	kick chan struct{}
}

func scheduleXoverSave() {
	if XoverPath() == "" {
		return
	}
	xoverSave.once.Do(func() {
		xoverSave.kick = make(chan struct{}, 1)
		go xoverSaverLoop()
	})
	select {
	case xoverSave.kick <- struct{}{}:
	default:
	}
}

func xoverSaverLoop() {
	for range xoverSave.kick {
		// Coalesce the startup freeze burst into one write; a process that
		// exits inside this window loses the save (no exit hook) — the cmds
		// call FlushXoverTable for that. Routing through the flush keeps the
		// dirty guard authoritative: once any flush has persisted the
		// current decisions, a stale background kick writes nothing.
		time.Sleep(20 * time.Millisecond)
		select {
		case <-xoverSave.kick:
		default:
		}
		_ = FlushXoverTable()
	}
}

// FlushXoverTable synchronously persists the current crossover decisions to
// XoverPath(), creating the directory as needed — the cmds' exit-path
// companion to tensor.FlushTuneTable. It is a no-op (nil) when persistence
// is disabled or when this process froze nothing new (xoverDirty): a table
// holding only disk-loaded decisions must not be renamed over a file a
// concurrent process may have extended.
func FlushXoverTable() error {
	path := XoverPath()
	if path == "" {
		return nil
	}
	if !xoverDirty.Swap(false) {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		xoverDirty.Store(true) // still unsaved; a later flush should retry
		return err
	}
	if err := SaveXoverTable(path); err != nil {
		xoverDirty.Store(true)
		return err
	}
	return nil
}

// startupLoadXoverTable is the init-time pre-load with graceful
// degradation: a corrupt table is quarantined to <path>.corrupt once (the
// probe phase rebuilds it), a missing file re-probes silently, and other
// errors surface only when the operator pointed SAMO_SPARSE_XOVER_TABLE at
// the file. Returns the warning to log, or "".
func startupLoadXoverTable(path string, explicit bool) string {
	err := LoadXoverTable(path)
	switch {
	case err == nil || os.IsNotExist(err):
		return ""
	case errors.Is(err, errXoverTableParse):
		quarantine := path + ".corrupt"
		if rerr := os.Rename(path, quarantine); rerr != nil {
			return fmt.Sprintf("sparse: ignoring corrupt crossover table (quarantine failed: %v): %v", rerr, err)
		}
		return fmt.Sprintf("sparse: quarantined corrupt crossover table to %s; re-probing (%v)", quarantine, err)
	case explicit:
		return fmt.Sprintf("sparse: SAMO_SPARSE_XOVER_TABLE not loaded: %v", err)
	default:
		return ""
	}
}

func init() {
	explicit := os.Getenv("SAMO_SPARSE_XOVER_TABLE") != ""
	path := XoverPath()
	if path == "" {
		return
	}
	if msg := startupLoadXoverTable(path, explicit); msg != "" {
		fmt.Fprintf(os.Stderr, "%s\n", msg)
	}
}
