package sparse

import (
	"fmt"
	"math"
	"testing"

	"github.com/sparse-dl/samo/internal/tensor"
)

// bitwiseEqualSlice reports the first index at which two float32 slices
// differ in BITS (NaN-safe, -0 != +0), or (-1, true) when identical.
func bitwiseEqualSlice(a, b []float32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// TestSparseKernelsBitwiseDeterminism pins the whole sparse kernel family —
// SpMMInto, SDDMMInto and the transposed SpMMTInto on both a primary
// pattern and its cached Transpose() — to one reference output BITWISE at
// every worker count the training stack uses, on the paper's pruned FC
// shapes (batch 576, square weights at 90% and 99% sparsity plus a
// rectangular layer). Every output element has a single owning worker and a
// fixed accumulation order (the CSR's p order, and ascending k for SpMM),
// so resizing the pool can never perturb sparse training — the same
// contract the GEMM family and Col2Im carry.
func TestSparseKernelsBitwiseDeterminism(t *testing.T) {
	defer tensor.SetWorkers(tensor.SetWorkers(0))
	const batch = 576
	for _, s := range []struct {
		out, in  int
		sparsity float64
	}{
		{128, 128, 0.9},
		{256, 256, 0.9},
		{128, 256, 0.9},
		{256, 256, 0.99},
	} {
		t.Run(fmt.Sprintf("%dx%d/s%.2f", s.out, s.in, s.sparsity), func(t *testing.T) {
			seed := uint64(s.out*1000 + s.in)
			w, _ := randMaskedCSR(s.out, s.in, 1-s.sparsity, seed)
			wt := w.Transpose()
			x := randDense(batch, s.in, seed+1)
			dy := randDense(batch, s.out, seed+2)
			xT := tensor.Transpose(x)
			dyT := tensor.Transpose(dy)

			tensor.SetWorkers(1)
			refFwd := tensor.New(batch, s.out)
			w.SpMMTInto(refFwd, x)
			refDx := tensor.New(batch, s.in)
			wt.SpMMTInto(refDx, dy)
			refSpMM := tensor.New(s.out, batch)
			w.SpMMInto(refSpMM, xT)
			refSDDMM := make([]float32, w.NNZ())
			w.SDDMMInto(refSDDMM, dyT, xT, false)

			outFwd := tensor.New(batch, s.out)
			outDx := tensor.New(batch, s.in)
			outSpMM := tensor.New(s.out, batch)
			outSDDMM := make([]float32, w.NNZ())
			for _, workers := range []int{1, 2, 3, 4, 8, 16} {
				tensor.SetWorkers(workers)
				w.SpMMTInto(outFwd, x)
				if i, ok := bitwiseEqualSlice(outFwd.Data(), refFwd.Data()); !ok {
					t.Fatalf("workers=%d: SpMMT (forward) differs from reference at %d", workers, i)
				}
				wt.SpMMTInto(outDx, dy)
				if i, ok := bitwiseEqualSlice(outDx.Data(), refDx.Data()); !ok {
					t.Fatalf("workers=%d: SpMMT (transpose/input-grad) differs at %d", workers, i)
				}
				w.SpMMInto(outSpMM, xT)
				if i, ok := bitwiseEqualSlice(outSpMM.Data(), refSpMM.Data()); !ok {
					t.Fatalf("workers=%d: SpMM differs from reference at %d", workers, i)
				}
				for i := range outSDDMM {
					outSDDMM[i] = 42
				}
				w.SDDMMInto(outSDDMM, dyT, xT, false)
				if i, ok := bitwiseEqualSlice(outSDDMM, refSDDMM); !ok {
					t.Fatalf("workers=%d: SDDMM differs from reference at %d", workers, i)
				}
			}
		})
	}
}
