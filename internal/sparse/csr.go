package sparse

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/tensor"
)

// CSR is a compressed-sparse-row matrix. It backs the Sputnik-style sparse
// compute baseline: the paper integrates Sputnik's spMM/SDDMM into AxoNN to
// show that computing sparse is slower than computing dense at DL sparsities,
// which is precisely why SAMO compresses *storage* but not *compute*.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float32
}

// CSRFromDense builds a CSR matrix from a dense (rows, cols) tensor,
// dropping exact zeros.
func CSRFromDense(t *tensor.Tensor) *CSR {
	if t.Rank() != 2 {
		panic("sparse: CSRFromDense requires rank 2")
	}
	rows, cols := t.Dim(0), t.Dim(1)
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	d := t.Data()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := d[i*cols+j]; v != 0 {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = int32(len(m.Val))
	}
	return m
}

// CSRFromIndex builds a CSR matrix over a rows×cols view from a shared
// linearized index and the matching compressed values.
func CSRFromIndex(ix *Index, values []float32, rows, cols int) *CSR {
	if rows*cols != ix.FullLen() {
		panic(fmt.Sprintf("sparse: CSRFromIndex %dx%d != %d", rows, cols, ix.FullLen()))
	}
	if len(values) != ix.NNZ() {
		panic("sparse: CSRFromIndex values length mismatch")
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, ix.NNZ()), Val: append([]float32(nil), values...)}
	for i, id := range ix.IDs() {
		m.ColIdx[i] = id % int32(cols)
		m.RowPtr[id/int32(cols)+1]++
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// CSRFromDenseIndexed builds a CSR over the (rows, cols) view of a dense
// 1-D layer holding exactly the indexed entries — the canonical bridge from
// a pruning index to executable sparse state (stored zeros at indexed
// positions are kept, unlike CSRFromDense: the pattern is the index, not
// the values). Shared by prune.Result.MaterializeCSR and nn.SparseLinear.
func CSRFromDenseIndexed(ix *Index, dense []float32, rows, cols int) *CSR {
	vals := make([]float32, ix.NNZ())
	ix.Compress(vals, dense)
	return CSRFromIndex(ix, vals, rows, cols)
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Bytes returns the storage footprint (values + column indices + row
// pointers).
func (m *CSR) Bytes() int64 {
	return int64(len(m.Val))*4 + int64(len(m.ColIdx))*4 + int64(len(m.RowPtr))*4
}

// Dense materializes the matrix as a dense tensor.
func (m *CSR) Dense() *tensor.Tensor {
	t := tensor.New(m.Rows, m.Cols)
	d := t.Data()
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			d[i*m.Cols+int(m.ColIdx[p])] = m.Val[p]
		}
	}
	return t
}

// csrRowGrain returns the minimum CSR rows per parallel chunk so that one
// chunk carries at least ixGrain scalar operations — the same memory-bound
// rationale as the gather/scatter loops: these kernels stream values and
// indices with almost no arithmetic per byte, so chunks below that are all
// dispatch overhead. work is the kernel's total scalar-op count (nnz·n for
// SpMM, nnz·k for SDDMM); the per-row grain is just work spread back over
// the rows.
func csrRowGrain(rows, work int) int {
	if rows <= 0 || work <= 0 {
		return 1
	}
	g := ixGrain * rows / work
	if g < 1 {
		return 1
	}
	return g
}

// csrJob carries one sparse kernel's arguments to the worker pool; pooled
// so the sparse training and baseline paths dispatch without allocating
// closures.
type csrJob struct {
	m          *CSR
	a, b       []float32
	out        []float32
	n, k       int
	accumulate bool
}

var csrJobFree parallel.Pool[csrJob]

func getCSRJob() *csrJob { return csrJobFree.Get() }

func putCSRJob(j *csrJob) {
	j.m, j.a, j.b, j.out = nil, nil, nil, nil
	csrJobFree.Put(j)
}

func spmmChunk(ctx any, lo, hi int) {
	g := ctx.(*csrJob)
	m, bd, cd, n := g.m, g.b, g.out, g.n
	for i := lo; i < hi; i++ {
		ci := cd[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			v := m.Val[p]
			bk := bd[int(m.ColIdx[p])*n : int(m.ColIdx[p])*n+n]
			for j := range bk {
				ci[j] += v * bk[j]
			}
		}
	}
}

func sddmmChunk(ctx any, lo, hi int) {
	g := ctx.(*csrJob)
	m, ad, bd, k := g.m, g.a, g.b, g.k
	out, acc := g.out, g.accumulate
	for i := lo; i < hi; i++ {
		ai := ad[i*k : (i+1)*k]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			bj := bd[int(m.ColIdx[p])*k : int(m.ColIdx[p])*k+k]
			var s float32
			for x := range ai {
				s += ai[x] * bj[x]
			}
			if acc {
				out[p] += s
			} else {
				out[p] = s
			}
		}
	}
}

// spmmtChunk computes C rows [lo,hi) of C = B·Sᵀ: each C element is a
// gather-dot of one dense B row against one sparse S row, so every output
// element has a single owner and a fixed accumulation order (the CSR's p
// order) — the kernel is bitwise-identical at every worker count.
func spmmtChunk(ctx any, lo, hi int) {
	g := ctx.(*csrJob)
	m, bd, cd := g.m, g.b, g.out
	k, rows := g.k, g.m.Rows
	for i := lo; i < hi; i++ {
		bi := bd[i*k : (i+1)*k]
		ci := cd[i*rows : (i+1)*rows]
		for j := 0; j < rows; j++ {
			var s float32
			for p := m.RowPtr[j]; p < m.RowPtr[j+1]; p++ {
				s += m.Val[p] * bi[m.ColIdx[p]]
			}
			ci[j] = s
		}
	}
}

// SpMM computes C = S·B for sparse S (m,k) and dense B (k,n) — the kernel a
// fully connected layer's forward pass would use under sparse compute
// (weights sparse, activations dense).
func (m *CSR) SpMM(b *tensor.Tensor) *tensor.Tensor {
	m.spmmCheck(b)
	c := tensor.New(m.Rows, b.Dim(1))
	m.SpMMInto(c, b)
	return c
}

func (m *CSR) spmmCheck(b *tensor.Tensor) {
	if b.Rank() != 2 || b.Dim(0) != m.Cols {
		panic(fmt.Sprintf("sparse: SpMM dims (%d,%d)x%v", m.Rows, m.Cols, b.Shape()))
	}
}

// SpMMInto computes C = S·B into a caller-provided (rows, n) tensor,
// avoiding the per-call allocation. Parallel over output rows: each worker
// owns disjoint C rows.
func (m *CSR) SpMMInto(c, b *tensor.Tensor) {
	m.spmmCheck(b)
	n := b.Dim(1)
	if c.Len() != m.Rows*n {
		panic(fmt.Sprintf("sparse: SpMMInto output has %d elements, want %d", c.Len(), m.Rows*n))
	}
	j := getCSRJob()
	j.m, j.b, j.out, j.n = m, b.Data(), c.Data(), n
	parallel.Run(m.Rows, csrRowGrain(m.Rows, m.NNZ()*n), j, spmmChunk)
	putCSRJob(j)
}

// SpMMT computes C = B·Sᵀ for dense B (n, k) and sparse S (rows, k) — the
// transposed-CSR SpMM. It is the product a sparse FC layer's forward and
// input-gradient passes both take: with the weight stored (out, in), the
// forward is x·Wᵀ against W itself and the input gradient is dy·(Wᵀ)ᵀ
// against the cached Transpose(). Unlike SpMM it needs no transposed dense
// operands: each output element gathers one B row against one S row.
func (m *CSR) SpMMT(b *tensor.Tensor) *tensor.Tensor {
	m.spmmtCheck(b)
	c := tensor.New(b.Dim(0), m.Rows)
	m.SpMMTInto(c, b)
	return c
}

func (m *CSR) spmmtCheck(b *tensor.Tensor) {
	if b.Rank() != 2 || b.Dim(1) != m.Cols {
		panic(fmt.Sprintf("sparse: SpMMT dims %vx(%d,%d)ᵀ", b.Shape(), m.Rows, m.Cols))
	}
}

// SpMMTInto computes C = B·Sᵀ into a caller-provided (n, rows) tensor
// without allocating. Parallel over C rows (the batch dimension): every
// output element is a gather-dot with a single owner and the CSR's fixed p
// order, so the result is bitwise-identical at every worker count.
func (m *CSR) SpMMTInto(c, b *tensor.Tensor) {
	m.spmmtCheck(b)
	n := b.Dim(0)
	if c.Len() != n*m.Rows {
		panic(fmt.Sprintf("sparse: SpMMTInto output has %d elements, want %d", c.Len(), n*m.Rows))
	}
	j := getCSRJob()
	j.m, j.b, j.out, j.k = m, b.Data(), c.Data(), m.Cols
	parallel.Run(n, csrRowGrain(n, n*m.NNZ()), j, spmmtChunk)
	putCSRJob(j)
}

// SDDMM computes the sampled dense-dense matrix multiplication
// out[i,j] = (A·Bᵀ)[i,j] for (i,j) in the sparsity pattern of m, with A
// (rows,k) and B (cols,k). This is the kernel the backward pass of a sparse
// FC layer needs (weight-gradient restricted to the unpruned pattern).
func (m *CSR) SDDMM(a, b *tensor.Tensor) *CSR {
	m.sddmmCheck(a, b)
	out := &CSR{Rows: m.Rows, Cols: m.Cols,
		RowPtr: append([]int32(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    make([]float32, len(m.Val))}
	m.SDDMMInto(out.Val, a, b, false)
	return out
}

func (m *CSR) sddmmCheck(a, b *tensor.Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != m.Rows || b.Dim(0) != m.Cols || a.Dim(1) != b.Dim(1) {
		panic("sparse: SDDMM shape mismatch")
	}
}

// SDDMMInto computes the sampled product into a caller-provided value
// slice aligned with m's pattern (len = NNZ), avoiding the fresh CSR and
// value allocations of SDDMM; with accumulate it adds into dstVal (the
// gradient-accumulation form a pipelined backward pass needs). Parallel
// over rows: each row's value range [RowPtr[i], RowPtr[i+1]) is disjoint,
// so workers write disjoint slices.
func (m *CSR) SDDMMInto(dstVal []float32, a, b *tensor.Tensor, accumulate bool) {
	m.sddmmCheck(a, b)
	if len(dstVal) != m.NNZ() {
		panic(fmt.Sprintf("sparse: SDDMMInto values length %d, want %d", len(dstVal), m.NNZ()))
	}
	k := a.Dim(1)
	j := getCSRJob()
	j.m, j.a, j.b, j.out, j.k = m, a.Data(), b.Data(), dstVal, k
	j.accumulate = accumulate
	parallel.Run(m.Rows, csrRowGrain(m.Rows, m.NNZ()*k), j, sddmmChunk)
	putCSRJob(j)
}

// Transpose returns the CSC-equivalent CSR of the transposed matrix.
func (m *CSR) Transpose() *CSR {
	t, _ := m.transpose(false)
	return t
}

// TransposePerm returns the transpose plus the value permutation relating
// the two patterns: t.Val[p] == m.Val[perm[p]] at build time. A layer that
// caches the transpose refreshes its values after each optimizer step with
// one Gather through perm instead of rebuilding the structure.
func (m *CSR) TransposePerm() (t *CSR, perm []int32) {
	return m.transpose(true)
}

func (m *CSR) transpose(withPerm bool) (*CSR, []int32) {
	t := &CSR{Rows: m.Cols, Cols: m.Rows,
		RowPtr: make([]int32, m.Cols+1),
		ColIdx: make([]int32, len(m.Val)),
		Val:    make([]float32, len(m.Val))}
	var perm []int32
	if withPerm {
		perm = make([]int32, len(m.Val))
	}
	m.transposeFill(t, perm)
	return t, perm
}

// transposeFill populates t (and perm, when non-nil) as the transpose of m
// via the counting sort both Transpose entry points share. t's slices must
// already have the right lengths (RowPtr: m.Cols+1, ColIdx/Val/perm: NNZ).
func (m *CSR) transposeFill(t *CSR, perm []int32) {
	for i := range t.RowPtr {
		t.RowPtr[i] = 0
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int32(nil), t.RowPtr[:m.Cols]...)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			t.ColIdx[next[c]] = int32(i)
			t.Val[next[c]] = m.Val[p]
			if perm != nil {
				perm[next[c]] = p
			}
			next[c]++
		}
	}
}

// ShrinkTo drops the pattern positions where keep is false (keep is in
// stored CSR order), compacting Val/ColIdx leftward and rewriting RowPtr —
// all in place. Under a gradual pruning schedule NNZ only ever decreases,
// so the backing arrays are reused across every prune event of a run.
func (m *CSR) ShrinkTo(keep []bool) {
	if len(keep) != len(m.Val) {
		panic(fmt.Sprintf("sparse: CSR ShrinkTo keep length %d, want %d", len(keep), len(m.Val)))
	}
	w := int32(0)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		m.RowPtr[i] = w
		for p := lo; p < hi; p++ {
			if keep[p] {
				m.Val[w] = m.Val[p]
				m.ColIdx[w] = m.ColIdx[p]
				w++
			}
		}
	}
	m.RowPtr[m.Rows] = w
	m.Val = m.Val[:w]
	m.ColIdx = m.ColIdx[:w]
}

// TransposePermInto rebuilds t and perm as the transpose of m, reusing
// their backing arrays — the in-place refresh a cached transpose needs
// after the primary pattern shrank. t must be a previous transpose of a
// superset pattern of m (same shape, so RowPtr keeps its length and
// ColIdx/Val/perm capacities cover the new NNZ); the resliced perm is
// returned. Cheaper bookkeeping aside, this is exactly transposeFill.
func (m *CSR) TransposePermInto(t *CSR, perm []int32) []int32 {
	if t.Rows != m.Cols || t.Cols != m.Rows || len(t.RowPtr) != m.Cols+1 {
		panic(fmt.Sprintf("sparse: TransposePermInto shape mismatch (%dx%d into %dx%d)",
			m.Rows, m.Cols, t.Rows, t.Cols))
	}
	nnz := len(m.Val)
	if cap(t.ColIdx) < nnz || cap(t.Val) < nnz || cap(perm) < nnz {
		panic("sparse: TransposePermInto target smaller than the new pattern")
	}
	t.ColIdx = t.ColIdx[:nnz]
	t.Val = t.Val[:nnz]
	perm = perm[:nnz]
	m.transposeFill(t, perm)
	return perm
}

// LinearIDs returns the strictly increasing linearized (row-major) element
// ids of the stored pattern — the scatter map a dense-masked materialization
// of the matrix uses (via IndexFromSlice + Expand).
func (m *CSR) LinearIDs() []int32 {
	ids := make([]int32, 0, len(m.Val))
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			ids = append(ids, int32(i)*int32(m.Cols)+m.ColIdx[p])
		}
	}
	return ids
}
