package sparse

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/tensor"
)

// CSR is a compressed-sparse-row matrix. It backs the Sputnik-style sparse
// compute baseline: the paper integrates Sputnik's spMM/SDDMM into AxoNN to
// show that computing sparse is slower than computing dense at DL sparsities,
// which is precisely why SAMO compresses *storage* but not *compute*.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float32
}

// CSRFromDense builds a CSR matrix from a dense (rows, cols) tensor,
// dropping exact zeros.
func CSRFromDense(t *tensor.Tensor) *CSR {
	if t.Rank() != 2 {
		panic("sparse: CSRFromDense requires rank 2")
	}
	rows, cols := t.Dim(0), t.Dim(1)
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	d := t.Data()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := d[i*cols+j]; v != 0 {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = int32(len(m.Val))
	}
	return m
}

// CSRFromIndex builds a CSR matrix over a rows×cols view from a shared
// linearized index and the matching compressed values.
func CSRFromIndex(ix *Index, values []float32, rows, cols int) *CSR {
	if rows*cols != ix.FullLen() {
		panic(fmt.Sprintf("sparse: CSRFromIndex %dx%d != %d", rows, cols, ix.FullLen()))
	}
	if len(values) != ix.NNZ() {
		panic("sparse: CSRFromIndex values length mismatch")
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, ix.NNZ()), Val: append([]float32(nil), values...)}
	for i, id := range ix.IDs() {
		m.ColIdx[i] = id % int32(cols)
		m.RowPtr[id/int32(cols)+1]++
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Bytes returns the storage footprint (values + column indices + row
// pointers).
func (m *CSR) Bytes() int64 {
	return int64(len(m.Val))*4 + int64(len(m.ColIdx))*4 + int64(len(m.RowPtr))*4
}

// Dense materializes the matrix as a dense tensor.
func (m *CSR) Dense() *tensor.Tensor {
	t := tensor.New(m.Rows, m.Cols)
	d := t.Data()
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			d[i*m.Cols+int(m.ColIdx[p])] = m.Val[p]
		}
	}
	return t
}

// SpMM computes C = S·B for sparse S (m,k) and dense B (k,n) — the kernel a
// fully connected layer's forward pass would use under sparse compute
// (weights sparse, activations dense).
func (m *CSR) SpMM(b *tensor.Tensor) *tensor.Tensor {
	if b.Rank() != 2 || b.Dim(0) != m.Cols {
		panic(fmt.Sprintf("sparse: SpMM dims (%d,%d)x%v", m.Rows, m.Cols, b.Shape()))
	}
	n := b.Dim(1)
	c := tensor.New(m.Rows, n)
	bd, cd := b.Data(), c.Data()
	// Parallel over output rows: each worker owns disjoint C rows.
	parallel.For(m.Rows, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := cd[i*n : (i+1)*n]
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				v := m.Val[p]
				bk := bd[int(m.ColIdx[p])*n : int(m.ColIdx[p])*n+n]
				for j := range bk {
					ci[j] += v * bk[j]
				}
			}
		}
	})
	return c
}

// SDDMM computes the sampled dense-dense matrix multiplication
// out[i,j] = (A·Bᵀ)[i,j] for (i,j) in the sparsity pattern of m, with A
// (rows,k) and B (cols,k). This is the kernel the backward pass of a sparse
// FC layer needs (weight-gradient restricted to the unpruned pattern).
func (m *CSR) SDDMM(a, b *tensor.Tensor) *CSR {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != m.Rows || b.Dim(0) != m.Cols || a.Dim(1) != b.Dim(1) {
		panic("sparse: SDDMM shape mismatch")
	}
	k := a.Dim(1)
	out := &CSR{Rows: m.Rows, Cols: m.Cols,
		RowPtr: append([]int32(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    make([]float32, len(m.Val))}
	ad, bd := a.Data(), b.Data()
	// Parallel over rows: each row's value range [RowPtr[i], RowPtr[i+1]) is
	// disjoint, so workers write disjoint slices of out.Val.
	parallel.For(m.Rows, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				bj := bd[int(m.ColIdx[p])*k : int(m.ColIdx[p])*k+k]
				var s float32
				for x := range ai {
					s += ai[x] * bj[x]
				}
				out.Val[p] = s
			}
		}
	})
	return out
}

// Transpose returns the CSC-equivalent CSR of the transposed matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows,
		RowPtr: make([]int32, m.Cols+1),
		ColIdx: make([]int32, len(m.Val)),
		Val:    make([]float32, len(m.Val))}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int32(nil), t.RowPtr...)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			t.ColIdx[next[c]] = int32(i)
			t.Val[next[c]] = m.Val[p]
			next[c]++
		}
	}
	return t
}
