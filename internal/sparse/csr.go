package sparse

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/tensor"
)

// CSR is a compressed-sparse-row matrix. It backs the Sputnik-style sparse
// compute baseline: the paper integrates Sputnik's spMM/SDDMM into AxoNN to
// show that computing sparse is slower than computing dense at DL sparsities,
// which is precisely why SAMO compresses *storage* but not *compute*.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float32
}

// CSRFromDense builds a CSR matrix from a dense (rows, cols) tensor,
// dropping exact zeros.
func CSRFromDense(t *tensor.Tensor) *CSR {
	if t.Rank() != 2 {
		panic("sparse: CSRFromDense requires rank 2")
	}
	rows, cols := t.Dim(0), t.Dim(1)
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	d := t.Data()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := d[i*cols+j]; v != 0 {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = int32(len(m.Val))
	}
	return m
}

// CSRFromIndex builds a CSR matrix over a rows×cols view from a shared
// linearized index and the matching compressed values.
func CSRFromIndex(ix *Index, values []float32, rows, cols int) *CSR {
	if rows*cols != ix.FullLen() {
		panic(fmt.Sprintf("sparse: CSRFromIndex %dx%d != %d", rows, cols, ix.FullLen()))
	}
	if len(values) != ix.NNZ() {
		panic("sparse: CSRFromIndex values length mismatch")
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, ix.NNZ()), Val: append([]float32(nil), values...)}
	for i, id := range ix.IDs() {
		m.ColIdx[i] = id % int32(cols)
		m.RowPtr[id/int32(cols)+1]++
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Bytes returns the storage footprint (values + column indices + row
// pointers).
func (m *CSR) Bytes() int64 {
	return int64(len(m.Val))*4 + int64(len(m.ColIdx))*4 + int64(len(m.RowPtr))*4
}

// Dense materializes the matrix as a dense tensor.
func (m *CSR) Dense() *tensor.Tensor {
	t := tensor.New(m.Rows, m.Cols)
	d := t.Data()
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			d[i*m.Cols+int(m.ColIdx[p])] = m.Val[p]
		}
	}
	return t
}

// csrRowGrain returns the minimum CSR rows per parallel chunk so that one
// chunk carries at least ixGrain scalar operations — the same memory-bound
// rationale as the gather/scatter loops: these kernels stream values and
// indices with almost no arithmetic per byte, so chunks below that are all
// dispatch overhead. work is the kernel's total scalar-op count (nnz·n for
// SpMM, nnz·k for SDDMM); the per-row grain is just work spread back over
// the rows.
func csrRowGrain(rows, work int) int {
	if rows <= 0 || work <= 0 {
		return 1
	}
	g := ixGrain * rows / work
	if g < 1 {
		return 1
	}
	return g
}

// csrJob carries one sparse kernel's arguments to the worker pool; pooled
// so the sparse-baseline sweeps dispatch without allocating closures.
type csrJob struct {
	m    *CSR
	a, b []float32
	out  []float32
	n, k int
}

var csrJobFree parallel.Pool[csrJob]

func getCSRJob() *csrJob { return csrJobFree.Get() }

func putCSRJob(j *csrJob) {
	j.m, j.a, j.b, j.out = nil, nil, nil, nil
	csrJobFree.Put(j)
}

func spmmChunk(ctx any, lo, hi int) {
	g := ctx.(*csrJob)
	m, bd, cd, n := g.m, g.b, g.out, g.n
	for i := lo; i < hi; i++ {
		ci := cd[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			v := m.Val[p]
			bk := bd[int(m.ColIdx[p])*n : int(m.ColIdx[p])*n+n]
			for j := range bk {
				ci[j] += v * bk[j]
			}
		}
	}
}

func sddmmChunk(ctx any, lo, hi int) {
	g := ctx.(*csrJob)
	m, ad, bd, k := g.m, g.a, g.b, g.k
	out := g.out
	for i := lo; i < hi; i++ {
		ai := ad[i*k : (i+1)*k]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			bj := bd[int(m.ColIdx[p])*k : int(m.ColIdx[p])*k+k]
			var s float32
			for x := range ai {
				s += ai[x] * bj[x]
			}
			out[p] = s
		}
	}
}

// SpMM computes C = S·B for sparse S (m,k) and dense B (k,n) — the kernel a
// fully connected layer's forward pass would use under sparse compute
// (weights sparse, activations dense).
func (m *CSR) SpMM(b *tensor.Tensor) *tensor.Tensor {
	m.spmmCheck(b)
	c := tensor.New(m.Rows, b.Dim(1))
	m.SpMMInto(c, b)
	return c
}

func (m *CSR) spmmCheck(b *tensor.Tensor) {
	if b.Rank() != 2 || b.Dim(0) != m.Cols {
		panic(fmt.Sprintf("sparse: SpMM dims (%d,%d)x%v", m.Rows, m.Cols, b.Shape()))
	}
}

// SpMMInto computes C = S·B into a caller-provided (rows, n) tensor,
// avoiding the per-call allocation. Parallel over output rows: each worker
// owns disjoint C rows.
func (m *CSR) SpMMInto(c, b *tensor.Tensor) {
	m.spmmCheck(b)
	n := b.Dim(1)
	if c.Len() != m.Rows*n {
		panic(fmt.Sprintf("sparse: SpMMInto output has %d elements, want %d", c.Len(), m.Rows*n))
	}
	j := getCSRJob()
	j.m, j.b, j.out, j.n = m, b.Data(), c.Data(), n
	parallel.Run(m.Rows, csrRowGrain(m.Rows, m.NNZ()*n), j, spmmChunk)
	putCSRJob(j)
}

// SDDMM computes the sampled dense-dense matrix multiplication
// out[i,j] = (A·Bᵀ)[i,j] for (i,j) in the sparsity pattern of m, with A
// (rows,k) and B (cols,k). This is the kernel the backward pass of a sparse
// FC layer needs (weight-gradient restricted to the unpruned pattern).
func (m *CSR) SDDMM(a, b *tensor.Tensor) *CSR {
	m.sddmmCheck(a, b)
	out := &CSR{Rows: m.Rows, Cols: m.Cols,
		RowPtr: append([]int32(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    make([]float32, len(m.Val))}
	m.SDDMMInto(out.Val, a, b)
	return out
}

func (m *CSR) sddmmCheck(a, b *tensor.Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != m.Rows || b.Dim(0) != m.Cols || a.Dim(1) != b.Dim(1) {
		panic("sparse: SDDMM shape mismatch")
	}
}

// SDDMMInto computes the sampled product into a caller-provided value
// slice aligned with m's pattern (len = NNZ), avoiding the fresh CSR and
// value allocations of SDDMM. Parallel over rows: each row's value range
// [RowPtr[i], RowPtr[i+1]) is disjoint, so workers write disjoint slices.
func (m *CSR) SDDMMInto(dstVal []float32, a, b *tensor.Tensor) {
	m.sddmmCheck(a, b)
	if len(dstVal) != m.NNZ() {
		panic(fmt.Sprintf("sparse: SDDMMInto values length %d, want %d", len(dstVal), m.NNZ()))
	}
	k := a.Dim(1)
	j := getCSRJob()
	j.m, j.a, j.b, j.out, j.k = m, a.Data(), b.Data(), dstVal, k
	parallel.Run(m.Rows, csrRowGrain(m.Rows, m.NNZ()*k), j, sddmmChunk)
	putCSRJob(j)
}

// Transpose returns the CSC-equivalent CSR of the transposed matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows,
		RowPtr: make([]int32, m.Cols+1),
		ColIdx: make([]int32, len(m.Val)),
		Val:    make([]float32, len(m.Val))}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int32(nil), t.RowPtr...)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			t.ColIdx[next[c]] = int32(i)
			t.Val[next[c]] = m.Val[p]
			next[c]++
		}
	}
	return t
}
