package sparse

import (
	"testing"
	"time"
)

// TestDensityBands pins the band layout the crossover keys on: the
// evaluation's sparsities {0.5, 0.75, 0.9, 0.95, 0.99} must land in
// distinct bands, and degenerate patterns in band 0.
func TestDensityBands(t *testing.T) {
	const full = 10000
	bands := map[float64]uint8{}
	for _, sparsity := range []float64{0, 0.5, 0.75, 0.9, 0.95, 0.99} {
		bands[sparsity] = densityBand(int(float64(full)*(1-sparsity)), full)
	}
	if bands[0] != 0 {
		t.Errorf("fully dense band = %d, want 0", bands[0])
	}
	seen := map[uint8]float64{}
	for sp, b := range bands {
		if prev, dup := seen[b]; dup {
			t.Errorf("sparsities %.2f and %.2f share band %d", prev, sp, b)
		}
		seen[b] = sp
	}
	if densityBand(0, full) != 0 || densityBand(5, 0) != 0 {
		t.Error("degenerate nnz/full should band 0")
	}
}

// TestXoverProbeAndFreeze drives one bucket through the probe phase by
// hand: probes must alternate deterministically between the paths, the
// bucket must freeze on the better minimum after both have their samples,
// and the frozen choice must be returned without further probing.
func TestXoverProbeAndFreeze(t *testing.T) {
	ResetXover()
	defer ResetXover()
	if prev, err := SetXover("auto"); err != nil {
		t.Fatal(err)
	} else {
		defer SetXover(prev)
	}
	var first *XoverEntry
	counts := map[XoverChoice]int{}
	for i := 0; i < 2*xoverProbeRuns; i++ {
		e, c, probe := XoverDecide(XoverOpForward, 64, 128, 128, 1638, 128*128)
		if !probe {
			t.Fatalf("call %d: expected a probe while undecided", i)
		}
		if first == nil {
			first = e
		} else if e != first {
			t.Fatal("same shape+density resolved to different buckets")
		}
		counts[c]++
		// Report timings that make the sparse path clearly faster.
		d := time.Millisecond
		if c == XoverDense {
			d = 10 * time.Millisecond
		}
		e.Record(c, d, 64*128*128)
	}
	if counts[XoverSparse] != xoverProbeRuns || counts[XoverDense] != xoverProbeRuns {
		t.Fatalf("probe alternation uneven: %v", counts)
	}
	if c, ok := first.Decided(); !ok || c != XoverSparse {
		t.Fatalf("bucket not frozen sparse: choice=%v decided=%v", c, ok)
	}
	if _, c, probe := XoverDecide(XoverOpForward, 64, 128, 128, 1638, 128*128); probe || c != XoverSparse {
		t.Fatalf("frozen bucket probed again (choice=%v probe=%v)", c, probe)
	}
	// A different density band is a different bucket, still probing.
	if _, _, probe := XoverDecide(XoverOpForward, 64, 128, 128, 8192, 128*128); !probe {
		t.Fatal("different density band should probe independently")
	}
	// The backward product of the same (square-layer) shape is a different
	// bucket too: its dense fallback is a different kernel.
	if _, _, probe := XoverDecide(XoverOpBackward, 64, 128, 128, 1638, 128*128); !probe {
		t.Fatal("backward op should tune independently of the frozen forward bucket")
	}
}

// TestXoverForce pins the override paths: forced modes bypass the table
// entirely, invalid modes error, and the previous mode round-trips.
func TestXoverForce(t *testing.T) {
	ResetXover()
	defer ResetXover()
	prev, err := SetXover("dense")
	if err != nil {
		t.Fatal(err)
	}
	defer SetXover(prev)
	if e, c, probe := XoverDecide(XoverOpForward, 8, 8, 8, 10, 64); e != nil || probe || c != XoverDense {
		t.Fatalf("forced dense: got entry=%v choice=%v probe=%v", e, c, probe)
	}
	if cur, err := SetXover("sparse"); err != nil || cur != "dense" {
		t.Fatalf("SetXover(sparse): prev=%q err=%v", cur, err)
	}
	if _, c, _ := XoverDecide(XoverOpForward, 8, 8, 8, 10, 64); c != XoverSparse {
		t.Fatal("forced sparse not honored")
	}
	if _, err := SetXover("bogus"); err == nil {
		t.Fatal("invalid mode should error")
	}
	// nnz 0 is decided sparse without a bucket, in auto mode too.
	if _, err := SetXover("auto"); err != nil {
		t.Fatal(err)
	}
	if e, c, probe := XoverDecide(XoverOpForward, 8, 8, 8, 0, 64); e != nil || probe || c != XoverSparse {
		t.Fatal("empty pattern should short-circuit to sparse")
	}
}
