package sparse

import (
	"testing"
	"testing/quick"

	"github.com/sparse-dl/samo/internal/fp16"
	"github.com/sparse-dl/samo/internal/tensor"
)

func TestMaskBasics(t *testing.T) {
	m := NewMask(130)
	if m.Count() != 0 || m.Sparsity() != 1 {
		t.Fatal("fresh mask should be all pruned")
	}
	m.Set(0)
	m.Set(64)
	m.Set(129)
	if m.Count() != 3 {
		t.Errorf("Count = %d", m.Count())
	}
	if !m.Get(64) || m.Get(63) {
		t.Error("Get wrong")
	}
	m.Clear(64)
	if m.Get(64) || m.Count() != 2 {
		t.Error("Clear wrong")
	}
	idx := m.Indices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 129 {
		t.Errorf("Indices = %v", idx)
	}
}

func TestFullMask(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		m := FullMask(n)
		if m.Count() != n {
			t.Errorf("FullMask(%d).Count() = %d", n, m.Count())
		}
		if n > 0 && m.Sparsity() != 0 {
			t.Errorf("FullMask(%d) sparsity %g", n, m.Sparsity())
		}
	}
}

func TestMaskApply(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	m := FromIndices(4, []int32{1, 3})
	m.Apply(data)
	want := []float32{0, 2, 0, 4}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("Apply: %v", data)
		}
	}
}

func TestHammingDistance(t *testing.T) {
	a := FromIndices(100, []int32{1, 2, 3})
	b := FromIndices(100, []int32{2, 3, 4})
	if d := HammingDistance(a, b); d != 0.02 {
		t.Errorf("HammingDistance = %g, want 0.02", d)
	}
	if HammingDistance(a, a.Clone()) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestIndexRoundTripProperty(t *testing.T) {
	// expand(compress(x)) == mask(x) for any dense vector and mask.
	f := func(vals []float32, seed uint64) bool {
		if len(vals) == 0 {
			return true
		}
		rng := tensor.NewRNG(seed)
		m := NewMask(len(vals))
		for i := range vals {
			if rng.Float32() < 0.3 {
				m.Set(i)
			}
		}
		ix := NewIndex(m)
		comp := make([]float32, ix.NNZ())
		ix.Compress(comp, vals)
		dense := make([]float32, len(vals))
		ix.Expand(dense, comp)
		for i, v := range vals {
			want := float32(0)
			if m.Get(i) {
				want = v
			}
			if dense[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompressExpandIdentityOnSupport(t *testing.T) {
	// compress(expand(c)) == c exactly, for any compressed vector.
	ix := IndexFromSlice([]int32{0, 3, 7, 8}, 10)
	c := []float32{1.5, -2, 3, 4}
	dense := make([]float32, 10)
	ix.Expand(dense, c)
	back := make([]float32, 4)
	ix.Compress(back, dense)
	for i := range c {
		if back[i] != c[i] {
			t.Fatalf("round trip: %v", back)
		}
	}
}

func TestIndexHalfPath(t *testing.T) {
	ix := IndexFromSlice([]int32{1, 2, 5}, 6)
	dense := make([]fp16.Bits, 6)
	for i := range dense {
		dense[i] = fp16.FromFloat32(float32(i + 1))
	}
	comp := make([]fp16.Bits, 3)
	ix.CompressHalf(comp, dense)
	out := make([]fp16.Bits, 6)
	ix.ExpandHalf(out, comp)
	for i := range out {
		want := float32(0)
		if i == 1 || i == 2 || i == 5 {
			want = float32(i + 1)
		}
		if fp16.ToFloat32(out[i]) != want {
			t.Fatalf("half path: idx %d = %g want %g", i, fp16.ToFloat32(out[i]), want)
		}
	}
}

func TestIndexBytes(t *testing.T) {
	ix := IndexFromSlice([]int32{0, 5, 9}, 10)
	if ix.Bytes() != 12 {
		t.Errorf("Bytes = %d, want 12", ix.Bytes())
	}
}

func TestCoords2DInverseOfLinearization(t *testing.T) {
	// The paper's example: non-zeros of a 2x2 tensor at [(0,0),(1,1)] are
	// linearized to [0,3].
	ix := IndexFromSlice([]int32{0, 3}, 4)
	r, c := ix.Coords2D(2, 2)
	if r[0] != 0 || c[0] != 0 || r[1] != 1 || c[1] != 1 {
		t.Errorf("Coords2D: r=%v c=%v", r, c)
	}
}

func TestIndexValidation(t *testing.T) {
	for _, bad := range [][]int32{{3, 2}, {1, 1}, {-1}, {10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IndexFromSlice(%v) should panic", bad)
				}
			}()
			IndexFromSlice(bad, 10)
		}()
	}
}

func randSparseTensor(rows, cols int, sparsity float64, seed uint64) *tensor.Tensor {
	t := tensor.New(rows, cols)
	rng := tensor.NewRNG(seed)
	for i := range t.Data() {
		if rng.Float64() >= sparsity {
			t.Data()[i] = float32(rng.Norm())
		}
	}
	return t
}

func TestCSRDenseRoundTrip(t *testing.T) {
	a := randSparseTensor(13, 17, 0.9, 1)
	m := CSRFromDense(a)
	if d := tensor.MaxAbsDiff(m.Dense(), a); d != 0 {
		t.Errorf("CSR round trip diff %g", d)
	}
}

func TestSpMMEqualsDenseMatMul(t *testing.T) {
	// CSR spMM must equal dense GEMM on the same (zero-filled) matrix —
	// the correctness condition behind Figure 1's apples-to-apples timing.
	a := randSparseTensor(24, 31, 0.85, 2)
	b := tensor.New(31, 9)
	tensor.FillNormal(b, 1, tensor.NewRNG(3))
	got := CSRFromDense(a).SpMM(b)
	want := tensor.MatMul(a, b)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Errorf("SpMM diff %g", d)
	}
}

func TestSDDMMEqualsMaskedDense(t *testing.T) {
	pattern := randSparseTensor(12, 10, 0.8, 4)
	m := CSRFromDense(pattern)
	a := tensor.New(12, 6)
	b := tensor.New(10, 6)
	tensor.FillNormal(a, 1, tensor.NewRNG(5))
	tensor.FillNormal(b, 1, tensor.NewRNG(6))
	got := m.SDDMM(a, b).Dense()
	full := tensor.MatMulT(a, b)
	// Mask the dense product to the pattern.
	for i := 0; i < 12; i++ {
		for j := 0; j < 10; j++ {
			if pattern.At(i, j) == 0 {
				full.Set(0, i, j)
			}
		}
	}
	if d := tensor.MaxAbsDiff(got, full); d > 1e-4 {
		t.Errorf("SDDMM diff %g", d)
	}
}

func TestCSRFromIndexMatchesFromDense(t *testing.T) {
	a := randSparseTensor(8, 6, 0.7, 7)
	mask := NewMask(48)
	for i, v := range a.Data() {
		if v != 0 {
			mask.Set(i)
		}
	}
	ix := NewIndex(mask)
	vals := make([]float32, ix.NNZ())
	ix.Compress(vals, a.Data())
	m1 := CSRFromIndex(ix, vals, 8, 6)
	m2 := CSRFromDense(a)
	if d := tensor.MaxAbsDiff(m1.Dense(), m2.Dense()); d != 0 {
		t.Errorf("CSRFromIndex mismatch %g", d)
	}
}

func TestCSRTranspose(t *testing.T) {
	a := randSparseTensor(9, 14, 0.8, 8)
	got := CSRFromDense(a).Transpose().Dense()
	want := tensor.Transpose(a)
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Errorf("Transpose diff %g", d)
	}
}

func TestCSRBytesAccounting(t *testing.T) {
	a := randSparseTensor(10, 10, 0.9, 9)
	m := CSRFromDense(a)
	want := int64(m.NNZ()*8 + 11*4)
	if m.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", m.Bytes(), want)
	}
}

func BenchmarkCompress(b *testing.B) {
	n := 1 << 16
	m := NewMask(n)
	rng := tensor.NewRNG(1)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			m.Set(i)
		}
	}
	ix := NewIndex(m)
	dense := make([]float32, n)
	comp := make([]float32, ix.NNZ())
	b.SetBytes(int64(ix.NNZ() * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Compress(comp, dense)
	}
}

func BenchmarkExpand(b *testing.B) {
	n := 1 << 16
	m := NewMask(n)
	rng := tensor.NewRNG(1)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			m.Set(i)
		}
	}
	ix := NewIndex(m)
	dense := make([]float32, n)
	comp := make([]float32, ix.NNZ())
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Expand(dense, comp)
	}
}
