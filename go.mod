module github.com/sparse-dl/samo

go 1.22
