package main

import (
	"strings"
	"testing"
)

// TestRunSmoke runs the dense and SAMO pipeline configurations for a couple
// of iterations over the real hybrid-parallel engine.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-iters", "2"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := buf.String()
	for _, want := range []string{"dense AxoNN", "AxoNN+SAMO", "final perplexity"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunRejectsZeroIters pins the validation added with the -iters flag:
// zero iterations used to panic indexing the empty loss series.
func TestRunRejectsZeroIters(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-iters", "0"}, &buf); err == nil {
		t.Fatal("expected -iters validation error")
	}
}
