// gpt_pipeline trains a small GPT-style language model on a synthetic corpus
// with the real hybrid-parallel engine — Ginter=2 pipeline stages × Gdata=2
// data-parallel groups, i.e. four goroutine "GPUs" — twice: dense AxoNN and
// AxoNN+SAMO with a 90%-sparse magnitude ticket. It then compares the
// training curves and the communication volume, demonstrating the paper's
// two claims at example scale: statistical efficiency is preserved, and the
// data-parallel all-reduce shrinks with the gradient compression.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	samo "github.com/sparse-dl/samo"
	"github.com/sparse-dl/samo/internal/data"
	"github.com/sparse-dl/samo/internal/nn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable body of the example: flags parse from args, output
// goes to out, and failures return instead of exiting the process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gpt_pipeline", flag.ContinueOnError)
	// Parse errors are returned (main prints them once, to stderr);
	// -h gets the usage on the success writer and a clean exit.
	fs.SetOutput(io.Discard)
	iters := fs.Int("iters", 80, "training iterations per mode")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}
	if *iters < 1 {
		return fmt.Errorf("-iters must be >= 1 (got %d)", *iters)
	}

	cfg := samo.GPTConfig{Name: "gpt-mini", Layers: 2, Hidden: 48, Heads: 4, Seq: 12, Vocab: 48}
	build := func() *samo.Model { return samo.NewGPT(cfg, samo.NewRNG(7)) }
	fmt.Fprintf(out, "model: %s, %d parameters, trained on 4 virtual GPUs (2 stages x 2 replicas)\n",
		cfg.Name, build().NumParams())

	corpus := data.SynthText("synthtext", cfg.Vocab, 20000, 11)
	makeBatches := func() []samo.Batch {
		var batches []samo.Batch
		cursor := 0
		for i := 0; i < *iters; i++ {
			b, c := corpus.LMBatch(cursor, 8, cfg.Seq)
			cursor = c
			batches = append(batches, b)
		}
		return batches
	}

	pcfg := samo.ParallelConfig{Ginter: 2, Gdata: 2, Microbatch: 1, Mode: samo.ModeDense}
	optb := func() samo.Optimizer { return samo.NewAdamW(3e-3, 0.01) }

	fmt.Fprintln(out, "\n--- dense AxoNN ---")
	dense := samo.Train(pcfg, build, optb, nil, makeBatches())
	if dense.Err != nil {
		return dense.Err
	}
	report(out, dense)

	fmt.Fprintln(out, "\n--- AxoNN+SAMO (90% pruned) ---")
	ticket := samo.PruneMagnitude(build(), 0.9)
	pcfg.Mode = samo.ModeSAMO
	samoRes := samo.Train(pcfg, build, optb, ticket, makeBatches())
	if samoRes.Err != nil {
		return samoRes.Err
	}
	report(out, samoRes)

	fmt.Fprintf(out, "\ncollective elements per run: dense %d vs SAMO %d (%.1fx smaller all-reduce)\n",
		dense.Fabric.TotalCollElements(), samoRes.Fabric.TotalCollElements(),
		float64(dense.Fabric.TotalCollElements())/float64(samoRes.Fabric.TotalCollElements()))
	df := dense.Losses[len(dense.Losses)-1]
	sf := samoRes.Losses[len(samoRes.Losses)-1]
	fmt.Fprintf(out, "final perplexity: dense %.2f vs SAMO %.2f\n", nn.Perplexity(df), nn.Perplexity(sf))
	return nil
}

func report(out io.Writer, r samo.ParallelResult) {
	for i, l := range r.Losses {
		if i%20 == 0 || i == len(r.Losses)-1 {
			fmt.Fprintf(out, "iter %3d  loss %.4f  ppl %8.2f\n", i, l, nn.Perplexity(l))
		}
	}
}
