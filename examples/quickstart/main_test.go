package main

import (
	"strings"
	"testing"
)

// TestRunSmoke walks the whole quickstart — build, prune, SAMO state,
// memory ledger, a few training steps — at a tiny step count.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-steps", "5"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := buf.String()
	for _, want := range []string{"pruned to 90% sparsity", "model-state memory", "final loss"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
