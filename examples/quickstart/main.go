// Quickstart: prune a small network, enable SAMO, train, and inspect the
// memory ledger — the five-minute tour of the public API.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	samo "github.com/sparse-dl/samo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable body of the example: flags parse from args, output
// goes to out, and failures return instead of exiting the process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("quickstart", flag.ContinueOnError)
	// Parse errors are returned (main prints them once, to stderr);
	// -h gets the usage on the success writer and a clean exit.
	fs.SetOutput(io.Discard)
	steps := fs.Int("steps", 200, "training steps")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}

	// 1. Build a model.
	rng := samo.NewRNG(42)
	model := samo.NewMLP("quickstart", []int{16, 64, 64, 4}, rng)
	fmt.Fprintf(out, "model: %d parameters\n", model.NumParams())

	// 2. Prune 90% of the weights by magnitude (the paper's setting).
	ticket := samo.PruneMagnitude(model, 0.9)
	fmt.Fprintf(out, "pruned to %.0f%% sparsity: %d of %d prunable weights survive\n",
		100*ticket.Sparsity(), ticket.KeptParams(), ticket.TotalParams())

	// 3. Enable SAMO: θ16 stays dense for fast kernels; θ32, gradients and
	// Adam states are stored compressed on a shared index.
	state := samo.NewState(model, samo.NewAdam(0.005), samo.ModeSAMO, ticket)

	// Compare against what dense mixed precision would cost.
	denseModel := samo.NewMLP("dense-ref", []int{16, 64, 64, 4}, samo.NewRNG(42))
	denseState := samo.NewState(denseModel, samo.NewAdam(0.005), samo.ModeDense, nil)
	fmt.Fprintf(out, "model-state memory: dense %d bytes -> SAMO %d bytes (%.0f%% saved)\n",
		denseState.Memory().Total(), state.Memory().Total(),
		100*(1-float64(state.Memory().Total())/float64(denseState.Memory().Total())))
	fmt.Fprintf(out, "analytical prediction at p=0.9: %.0f%% saved\n", samo.MemorySavingsPercent(0.9))

	// 4. Train on a toy task: classify by the sign pattern of two features.
	trainer := samo.NewTrainer(state)
	x := samo.NewTensor(64, 16)
	samo.FillNormal(x, 1, rng)
	targets := make([]int, 64)
	for i := range targets {
		k := 0
		if x.At(i, 0) > 0 {
			k += 2
		}
		if x.At(i, 1) > 0 {
			k++
		}
		targets[i] = k
	}
	fmt.Fprintf(out, "initial loss: %.4f\n", trainer.EvalLoss(x, targets))
	for step := 1; step <= *steps; step++ {
		loss, _ := trainer.TrainStep(x, targets)
		if step%50 == 0 {
			fmt.Fprintf(out, "step %3d: loss %.4f\n", step, loss)
		}
	}
	fmt.Fprintf(out, "final loss: %.4f (pruned coordinates stayed exactly zero throughout)\n",
		trainer.EvalLoss(x, targets))
	return nil
}
