package main

import (
	"strings"
	"testing"
)

// TestRunSmoke sweeps the smallest Table I model through the analytic
// simulator and checks the report structure.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-model", "XL"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := buf.String()
	for _, want := range []string{"strong scaling of", "device layouts", "utilization"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunUnknownModel pins the error path.
func TestRunUnknownModel(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-model", "9000B"}, &buf); err == nil {
		t.Fatal("expected unknown-model error")
	}
}

// TestRunSparseExec drives the measured sparse-execution mode with a tiny
// step budget and checks the comparison report structure.
func TestRunSparseExec(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-sparse-exec", "-steps", "1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := buf.String()
	for _, want := range []string{"masked-dense", "sparse-exec", "pruned-FLOPs speedup"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunSparseExecBadSteps pins the mode's argument validation.
func TestRunSparseExecBadSteps(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-sparse-exec", "-steps", "0"}, &buf); err == nil {
		t.Fatal("expected steps validation error")
	}
}
