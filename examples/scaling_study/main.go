// scaling_study drives the calibrated Summit simulator over a GPU sweep for
// one of the paper's Table I models, printing the strong-scaling series of
// Figures 6–7 plus the per-phase breakdown of Figure 8 — the "what would
// SAMO buy me at N GPUs" planning workflow.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	samo "github.com/sparse-dl/samo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable body of the example: flags parse from args, output
// goes to out, and failures return instead of exiting the process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scaling_study", flag.ContinueOnError)
	// Parse errors are returned (main prints them once, to stderr);
	// -h gets the usage on the success writer and a clean exit.
	fs.SetOutput(io.Discard)
	modelName := fs.String("model", "2.7B", "GPT model: XL, 2.7B, 6.7B or 13B")
	sparsity := fs.Float64("sparsity", 0.9, "pruned fraction for SAMO")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}

	configs := map[string]samo.GPTConfig{
		"XL": samo.GPT3XL, "2.7B": samo.GPT3o2B7, "6.7B": samo.GPT3o6B7, "13B": samo.GPT3o13B,
	}
	cfg, ok := configs[*modelName]
	if !ok {
		return fmt.Errorf("unknown model %q (XL, 2.7B, 6.7B, 13B)", *modelName)
	}

	m := samo.Summit()
	fmt.Fprintf(out, "strong scaling of %s (batch %d) on %s, sparsity %.2f\n\n",
		cfg.Name, cfg.BatchSize, m.Name, *sparsity)
	fmt.Fprintf(out, "%6s %12s %12s %9s %30s\n", "GPUs", "AxoNN(s)", "+SAMO(s)", "speedup", "SAMO breakdown (cmp/p2p/bub/col)")

	for g := cfg.MinGPUs; g <= cfg.MaxGPUs; g *= 2 {
		ax := samo.EstimateGPT(cfg, m, g, false, *sparsity)
		sa := samo.EstimateGPT(cfg, m, g, true, *sparsity)
		if !ax.Feasible || !sa.Feasible {
			fmt.Fprintf(out, "%6d  infeasible\n", g)
			continue
		}
		fmt.Fprintf(out, "%6d %12.3f %12.3f %8.0f%% %10.2f/%.2f/%.2f/%.2f\n",
			g, ax.BatchTime, sa.BatchTime,
			100*(ax.BatchTime-sa.BatchTime)/ax.BatchTime,
			sa.Compute, sa.P2P, sa.Bubble, sa.Collective)
	}

	fmt.Fprintf(out, "\ndevice layouts at %d GPUs:\n", cfg.MaxGPUs)
	ax := samo.EstimateGPT(cfg, m, cfg.MaxGPUs, false, *sparsity)
	sa := samo.EstimateGPT(cfg, m, cfg.MaxGPUs, true, *sparsity)
	fmt.Fprintf(out, "  AxoNN: Ginter=%d x Gdata=%d (%d microbatches/pipeline)\n",
		ax.Plan.Ginter, ax.Plan.Gdata, ax.Plan.Micro)
	fmt.Fprintf(out, "  +SAMO: Ginter=%d x Gdata=%d (%d microbatches/pipeline)\n",
		sa.Plan.Ginter, sa.Plan.Gdata, sa.Plan.Micro)
	fmt.Fprintf(out, "\nutilization: AxoNN %.1f%% vs SAMO %.1f%% of aggregate fp16 peak\n",
		100*ax.PeakFraction, 100*sa.PeakFraction)
	return nil
}
