// scaling_study drives the calibrated Summit simulator over a GPU sweep for
// one of the paper's Table I models, printing the strong-scaling series of
// Figures 6–7 plus the per-phase breakdown of Figure 8 — the "what would
// SAMO buy me at N GPUs" planning workflow. With -sparse-exec it instead
// MEASURES the sparse execution path on this host: the same pruned MLP
// trained masked-dense versus through CSR kernels (samo.Sparsify),
// reporting per-step time, the pruned-FLOPs speedup and the model-state
// memory both ways.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	samo "github.com/sparse-dl/samo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable body of the example: flags parse from args, output
// goes to out, and failures return instead of exiting the process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scaling_study", flag.ContinueOnError)
	// Parse errors are returned (main prints them once, to stderr);
	// -h gets the usage on the success writer and a clean exit.
	fs.SetOutput(io.Discard)
	modelName := fs.String("model", "2.7B", "GPT model: XL, 2.7B, 6.7B or 13B")
	sparsity := fs.Float64("sparsity", 0.9, "pruned fraction for SAMO")
	sparseExec := fs.Bool("sparse-exec", false,
		"measure the real sparse execution path (CSR kernels) on this host instead of simulating")
	schedule := fs.Bool("schedule", false,
		"sweep gradual-pruning schedules on this host and print the accuracy-proxy vs speedup frontier")
	steps := fs.Int("steps", 8, "training steps per path in -sparse-exec and -schedule modes")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}
	// Validate before any pruning call: an out-of-range target would
	// otherwise panic inside the pruning package (its contract is validated
	// input), and every mode below feeds -sparsity to it.
	if *sparsity < 0 || *sparsity >= 1 {
		return fmt.Errorf("-sparsity %g outside [0,1)", *sparsity)
	}
	if *schedule {
		return runScheduleStudy(out, *sparsity, *steps)
	}
	if *sparseExec {
		return runSparseExec(out, *sparsity, *steps)
	}

	configs := map[string]samo.GPTConfig{
		"XL": samo.GPT3XL, "2.7B": samo.GPT3o2B7, "6.7B": samo.GPT3o6B7, "13B": samo.GPT3o13B,
	}
	cfg, ok := configs[*modelName]
	if !ok {
		return fmt.Errorf("unknown model %q (XL, 2.7B, 6.7B, 13B)", *modelName)
	}

	m := samo.Summit()
	fmt.Fprintf(out, "strong scaling of %s (batch %d) on %s, sparsity %.2f\n\n",
		cfg.Name, cfg.BatchSize, m.Name, *sparsity)
	fmt.Fprintf(out, "%6s %12s %12s %9s %30s\n", "GPUs", "AxoNN(s)", "+SAMO(s)", "speedup", "SAMO breakdown (cmp/p2p/bub/col)")

	for g := cfg.MinGPUs; g <= cfg.MaxGPUs; g *= 2 {
		ax := samo.EstimateGPT(cfg, m, g, false, *sparsity)
		sa := samo.EstimateGPT(cfg, m, g, true, *sparsity)
		if !ax.Feasible || !sa.Feasible {
			fmt.Fprintf(out, "%6d  infeasible\n", g)
			continue
		}
		fmt.Fprintf(out, "%6d %12.3f %12.3f %8.0f%% %10.2f/%.2f/%.2f/%.2f\n",
			g, ax.BatchTime, sa.BatchTime,
			100*(ax.BatchTime-sa.BatchTime)/ax.BatchTime,
			sa.Compute, sa.P2P, sa.Bubble, sa.Collective)
	}

	fmt.Fprintf(out, "\ndevice layouts at %d GPUs:\n", cfg.MaxGPUs)
	ax := samo.EstimateGPT(cfg, m, cfg.MaxGPUs, false, *sparsity)
	sa := samo.EstimateGPT(cfg, m, cfg.MaxGPUs, true, *sparsity)
	fmt.Fprintf(out, "  AxoNN: Ginter=%d x Gdata=%d (%d microbatches/pipeline)\n",
		ax.Plan.Ginter, ax.Plan.Gdata, ax.Plan.Micro)
	fmt.Fprintf(out, "  +SAMO: Ginter=%d x Gdata=%d (%d microbatches/pipeline)\n",
		sa.Plan.Ginter, sa.Plan.Gdata, sa.Plan.Micro)
	fmt.Fprintf(out, "\nutilization: AxoNN %.1f%% vs SAMO %.1f%% of aggregate fp16 peak\n",
		100*ax.PeakFraction, 100*sa.PeakFraction)
	return nil
}

// runSparseExec trains the same pruned MLP twice on this host — masked-dense
// and through the first-class sparse layers — and reports per-step time,
// speedup, loss parity and the model-state memory of each path.
func runSparseExec(out io.Writer, sparsity float64, steps int) error {
	if steps < 1 {
		return fmt.Errorf("-steps must be >= 1, got %d", steps)
	}
	const batch, in, hidden, classes = 64, 256, 256, 16
	build := func() *samo.Model {
		return samo.NewMLP("fc", []int{in, hidden, hidden, classes}, samo.NewRNG(7))
	}
	dense := build()
	pr := samo.PruneMagnitude(dense, sparsity)
	sparse := samo.Sparsify(build(), pr) // fresh twin: Sparsify shares unconverted layers

	x := samo.NewTensor(batch, in)
	samo.FillNormal(x, 1, samo.NewRNG(8))
	targets := make([]int, batch)
	rng := samo.NewRNG(9)
	for i := range targets {
		targets[i] = rng.Intn(classes)
	}

	// Pin the sparse path for the measurement: the crossover needs several
	// timed calls per bucket before it freezes, and mixing those probe-phase
	// dense executions into the timed steps would understate the speedup.
	// (The masked-dense model has no sparse layers; the pin is a no-op for
	// it.)
	prevMode, err := samo.SetSparseCompute("sparse")
	if err != nil {
		return err
	}
	defer samo.SetSparseCompute(prevMode)

	fmt.Fprintf(out, "sparse execution on this host: %d-%d-%d-%d MLP, batch %d, sparsity %.2f, %d steps\n\n",
		in, hidden, hidden, classes, batch, sparsity, steps)
	run := func(label string, m *samo.Model) (msPerStep float64, loss float64, state *samo.State) {
		state = samo.NewState(m, samo.NewAdam(1e-3), samo.ModeSAMO, pr)
		tr := samo.NewTrainer(state)
		tr.TrainStep(x, targets) // warm pools, arena, caches
		t0 := time.Now()
		for i := 0; i < steps; i++ {
			loss, _ = tr.TrainStep(x, targets)
		}
		msPerStep = float64(time.Since(t0)) / float64(steps) / 1e6
		fmt.Fprintf(out, "%-14s %8.3f ms/step   loss %.4f   model state %d bytes\n",
			label, msPerStep, loss, state.Memory().Total())
		return
	}
	dms, dloss, _ := run("masked-dense", dense)
	sms, sloss, _ := run("sparse-exec", sparse)
	fmt.Fprintf(out, "\npruned-FLOPs speedup: %.2fx (dense/sparse step time)\n", dms/sms)
	if d := dloss - sloss; d > 0.05 || d < -0.05 {
		fmt.Fprintf(out, "NOTE: losses diverge (%.4f vs %.4f) — different summation orders only\n", dloss, sloss)
	}
	return nil
}

// runScheduleStudy trains the sparse-exec MLP under several gradual-pruning
// schedules — all starting from the same one-shot initial sparsity and
// cubically ramping to different final sparsities — and prints one frontier
// row per schedule: the final eval loss (accuracy proxy), mean step time,
// speedup over the masked-dense reference, and the final model-state bytes
// (which ratchet down with every prune event). The frontier is the
// accuracy-vs-speedup trade the schedule buys.
func runScheduleStudy(out io.Writer, initial float64, steps int) error {
	if steps < 4 {
		return fmt.Errorf("-steps must be >= 4 for a schedule sweep, got %d", steps)
	}
	const batch, in, hidden, classes = 64, 256, 256, 16
	build := func() *samo.Model {
		return samo.NewMLP("fc", []int{in, hidden, hidden, classes}, samo.NewRNG(7))
	}
	x := samo.NewTensor(batch, in)
	samo.FillNormal(x, 1, samo.NewRNG(8))
	targets := make([]int, batch)
	rng := samo.NewRNG(9)
	for i := range targets {
		targets[i] = rng.Intn(classes)
	}
	// Pin the sparse path (see runSparseExec) so crossover probing does not
	// blur the timings; the masked-dense reference has no sparse layers.
	prevMode, err := samo.SetSparseCompute("sparse")
	if err != nil {
		return err
	}
	defer samo.SetSparseCompute(prevMode)

	// The cubic ramp spans the middle half of the run so every schedule has
	// warm-up steps before and adaptation steps after its events.
	begin, end := steps/4, steps-steps/4
	freq := (end - begin) / 3
	if freq < 1 {
		freq = 1
	}
	type entry struct {
		label string
		sched *samo.PruneSchedule
	}
	entries := []entry{{label: "one-shot", sched: nil}}
	for _, final := range []float64{0.95, 0.98} {
		if final <= initial {
			continue
		}
		f := final
		entries = append(entries, entry{
			label: fmt.Sprintf("cubic->%.2f", f),
			sched: &samo.PruneSchedule{Initial: initial, Final: f,
				BeginStep: begin, EndStep: end, Frequency: freq},
		})
	}

	train := func(m *samo.Model, pr *samo.PruneResult, sched *samo.PruneSchedule) (msPerStep, evalLoss float64, stateBytes int64, err error) {
		state := samo.NewState(m, samo.NewAdam(1e-3), samo.ModeSAMO, pr)
		tr := samo.NewTrainer(state)
		var pruner *samo.GradualPruner
		if sched != nil {
			if pruner, err = samo.NewGradualPruner(state, *sched); err != nil {
				return 0, 0, 0, err
			}
		}
		tr.TrainStep(x, targets) // warm pools, arena, caches
		t0 := time.Now()
		for i := 0; i < steps; i++ {
			tr.TrainStep(x, targets)
			if pruner != nil {
				pruner.MaybePrune(i)
			}
		}
		msPerStep = float64(time.Since(t0)) / float64(steps) / 1e6
		return msPerStep, tr.EvalLoss(x, targets), state.Memory().Total(), nil
	}

	fmt.Fprintf(out, "gradual-pruning schedule frontier: %d-%d-%d-%d MLP, batch %d, initial sparsity %.2f, %d steps\n",
		in, hidden, hidden, classes, batch, initial, steps)
	fmt.Fprintf(out, "ramp: steps %d-%d, every %d steps\n\n", begin, end, freq)
	pr := samo.PruneMagnitude(build(), initial)
	dms, dloss, dbytes, err := train(build(), pr, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-14s %9s %10s %9s %14s\n", "schedule", "evalloss", "ms/step", "speedup", "state bytes")
	fmt.Fprintf(out, "%-14s %9.4f %10.3f %8.2fx %14d   (masked-dense reference)\n", "dense-ref", dloss, dms, 1.0, dbytes)
	for _, e := range entries {
		// Fresh pruning result per run: gradual pruning shrinks the state's
		// private index clones, but the sparse layers own their patterns.
		epr := samo.PruneMagnitude(build(), initial)
		sm := samo.Sparsify(build(), epr)
		ms, loss, bytes, err := train(sm, epr, e.sched)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-14s %9.4f %10.3f %8.2fx %14d\n", e.label, loss, ms, dms/ms, bytes)
	}
	return nil
}
