// cnn_dataparallel trains a small VGG-style CNN on synthetic images with
// pure data parallelism (the Figure 5 regime: the model fits on every GPU,
// so the only communication is the gradient all-reduce), comparing the
// all-reduce volume with and without SAMO's compressed gradients.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	samo "github.com/sparse-dl/samo"
	"github.com/sparse-dl/samo/internal/data"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable body of the example: flags parse from args, output
// goes to out, and failures return instead of exiting the process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cnn_dataparallel", flag.ContinueOnError)
	// Parse errors are returned (main prints them once, to stderr);
	// -h gets the usage on the success writer and a clean exit.
	fs.SetOutput(io.Discard)
	iters := fs.Int("iters", 40, "training iterations per mode")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}
	if *iters < 1 {
		return fmt.Errorf("-iters must be >= 1 (got %d)", *iters)
	}

	const classes = 4
	build := func() *samo.Model {
		return samo.NewVGG("vgg-mini", []int{8, -1, 16, -1}, 2, 8, classes, samo.NewRNG(3))
	}
	fmt.Fprintf(out, "model: vgg-mini, %d parameters; 4 data-parallel virtual GPUs\n", build().NumParams())

	images := data.SynthImages("synthimages", classes, 2, 8, 8, 5)
	makeBatches := func() []samo.Batch {
		var batches []samo.Batch
		for i := 0; i < *iters; i++ {
			b, _ := images.Batch(16)
			batches = append(batches, b)
		}
		return batches
	}

	pcfg := samo.ParallelConfig{Ginter: 1, Gdata: 4, Microbatch: 4, Mode: samo.ModeDense}
	optb := func() samo.Optimizer { return samo.NewSGD(0.05, 0.9, 5e-4) }

	fmt.Fprintln(out, "\n--- dense data parallelism ---")
	dense := samo.Train(pcfg, build, optb, nil, makeBatches())
	if dense.Err != nil {
		return dense.Err
	}
	show(out, dense)

	fmt.Fprintln(out, "\n--- SAMO data parallelism (90% pruned, compressed all-reduce) ---")
	ticket := samo.PruneMagnitude(build(), 0.9)
	pcfg.Mode = samo.ModeSAMO
	sres := samo.Train(pcfg, build, optb, ticket, makeBatches())
	if sres.Err != nil {
		return sres.Err
	}
	show(out, sres)

	d, s := dense.Fabric.TotalCollElements(), sres.Fabric.TotalCollElements()
	fmt.Fprintf(out, "\nall-reduce payload: dense %d elements vs SAMO %d (%.1fx reduction)\n",
		d, s, float64(d)/float64(s))
	return nil
}

func show(out io.Writer, r samo.ParallelResult) {
	for i, l := range r.Losses {
		if i%10 == 0 || i == len(r.Losses)-1 {
			fmt.Fprintf(out, "iter %3d  loss %.4f\n", i, l)
		}
	}
}
