package main

import (
	"strings"
	"testing"
)

// TestRunSmoke runs both data-parallel modes for a couple of iterations
// and checks the all-reduce comparison is reported.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-iters", "2"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := buf.String()
	for _, want := range []string{"dense data parallelism", "SAMO data parallelism", "all-reduce payload"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
