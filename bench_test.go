// Benchmarks regenerating each of the paper's tables and figures (one bench
// per experiment — `go test -bench Figure6` re-times the GPT-3 XL/2.7B
// scaling study), plus ablation benches for the design decisions DESIGN.md
// calls out. Custom metrics report the quantity the paper plots (seconds of
// simulated batch time, bytes of state, elements communicated) alongside the
// harness's own ns/op.
package samo_test

import (
	"io"
	"testing"

	samo "github.com/sparse-dl/samo"
	"github.com/sparse-dl/samo/internal/axonn"
	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/experiments"
	"github.com/sparse-dl/samo/internal/hw"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/simulate"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

func BenchmarkFigure1Kernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure1(io.Discard)
	}
}

func BenchmarkFigure2Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2(io.Discard)
	}
}

func BenchmarkFigure3Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure3(io.Discard)
	}
}

func BenchmarkFigure4Training(b *testing.B) {
	// One full dense-vs-SAMO convergence comparison at reduced length.
	for i := 0; i < b.N; i++ {
		experiments.Figure4(io.Discard, 20)
	}
}

func BenchmarkFigure5CNNScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure5(io.Discard)
	}
}

func BenchmarkFigure6GPTScaling(b *testing.B) {
	var last map[string]map[simulate.Method][]simulate.Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure6(io.Discard)
	}
	if r := last["GPT-3 2.7B"][simulate.MethodSAMO]; len(r) > 0 {
		b.ReportMetric(r[len(r)-1].BatchTime, "sim-s/iter@512")
	}
}

func BenchmarkFigure7LargeGPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure7(io.Discard)
	}
}

func BenchmarkFigure8Breakdown(b *testing.B) {
	var last map[int][2]simulate.Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure8(io.Discard)
	}
	pair := last[128]
	b.ReportMetric(100*(pair[0].BatchTime-pair[1].BatchTime)/pair[0].BatchTime, "speedup-%@128")
}

func BenchmarkTable2Throughput(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(io.Discard)
	}
	b.ReportMetric(rows[len(rows)-1].SAMO, "samo-%peak@2048")
}

// --- Ablation benches (design decisions from DESIGN.md) ---------------------

// BenchmarkAblationSharedIndex quantifies §III-B decision 1: all compressed
// states of a layer share ONE index tensor. Paying the index once costs 4fφ;
// per-tensor copies would cost 16fφ (four compressed states).
func BenchmarkAblationSharedIndex(b *testing.B) {
	phi := int64(10_000_000)
	kept := phi / 10
	shared := core.SAMOBreakdown(phi, kept)
	perTensor := shared
	perTensor.Index *= 4
	for i := 0; i < b.N; i++ {
		_ = shared.Total()
		_ = perTensor.Total()
	}
	b.ReportMetric(float64(shared.Total()), "shared-bytes")
	b.ReportMetric(float64(perTensor.Total()), "per-tensor-bytes")
}

// BenchmarkAblationLinearIndex quantifies §III-B decision 2: linearized 1-D
// indices cost one int32 per non-zero instead of N for an N-D tensor.
func BenchmarkAblationLinearIndex(b *testing.B) {
	// A conv filter is 4-D: (outC, inC, k, k). Coordinate storage would be
	// 4 int32 per non-zero.
	const dims = 4
	phi := int64(10_000_000)
	kept := phi / 10
	linear := kept * 4
	coords := kept * 4 * dims
	for i := 0; i < b.N; i++ {
		_ = linear
		_ = coords
	}
	b.ReportMetric(float64(linear), "linear-bytes")
	b.ReportMetric(float64(coords), "coord-bytes")
}

// BenchmarkAblationLayerGranular measures §III-C's layer-granular gradient
// compression: peak dense-gradient residency is one layer, not the model.
// The metric reported is the peak number of uncompressed gradient elements
// alive at once under each policy.
func BenchmarkAblationLayerGranular(b *testing.B) {
	rng := tensor.NewRNG(1)
	model := nn.BuildMLP("ablate", []int{64, 128, 128, 64, 8}, rng)
	pr := samoPrune(model, 0.9)
	state := core.NewModelState(model, optim.NewAdam(1e-3), core.SAMO, pr)
	x := tensor.New(8, 64)
	tensor.FillNormal(x, 1, rng)
	targets := []int{0, 1, 2, 3, 4, 5, 6, 7}

	var peakLayer, peakModel int
	for _, l := range model.Layers {
		n := 0
		for _, p := range l.Params() {
			n += p.Size()
		}
		if n > peakLayer {
			peakLayer = n
		}
		peakModel += n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.ZeroGrads()
		y, caches := model.Forward(x, true)
		_, g := nn.CrossEntropy(y, targets)
		tensor.Scale(g, state.LossScale())
		model.Backward(caches, g, state.GradHook())
		state.Step()
	}
	b.ReportMetric(float64(peakLayer), "peak-dense-grads/layer-granular")
	b.ReportMetric(float64(peakModel), "peak-dense-grads/whole-model")
}

// BenchmarkAblationCompressedAllReduce compares the data-parallel all-reduce
// payload with and without SAMO's compressed gradients (§IV-A) on the real
// fabric, reporting elements moved per batch.
func BenchmarkAblationCompressedAllReduce(b *testing.B) {
	build := func() *nn.Model {
		return nn.BuildMLP("ar", []int{32, 64, 32, 8}, tensor.NewRNG(3))
	}
	pr := samoPrune(build(), 0.9)
	batch := benchBatch(32, 8, 4)
	for _, mode := range []core.Mode{core.Dense, core.SAMO} {
		name := "dense"
		if mode == core.SAMO {
			name = "compressed"
		}
		b.Run(name, func(b *testing.B) {
			var elements int64
			for i := 0; i < b.N; i++ {
				res := axonn.Train(axonn.Config{
					Ginter: 1, Gdata: 2, Microbatch: 4, Mode: mode, OrderedReduce: false,
				}, build, func() optim.Optimizer { return optim.NewAdam(1e-3) }, pr,
					[]axonn.Batch{batch})
				elements = res.Fabric.TotalCollElements()
			}
			b.ReportMetric(float64(elements), "reduce-elements")
		})
	}
}

// BenchmarkAblationGinterChoice sweeps forced Ginter values for GPT-3 2.7B
// with SAMO at 512 GPUs, demonstrating §IV-B: batch time grows with Ginter,
// so the memory-minimal Ginter the planner picks is also the fastest.
func BenchmarkAblationGinterChoice(b *testing.B) {
	m := hw.Summit()
	j := simulate.TransformerJob(nn.GPT3_2B7)
	var times []float64
	for i := 0; i < b.N; i++ {
		times = times[:0]
		for _, gi := range []int{2, 4, 8, 16} {
			spec := simulate.PipelineSpec{
				Stages:       gi,
				Microbatches: j.Batch / (512 / gi),
				FwdTime:      j.FlopsPerBatch / float64(j.Batch) * 0.25 / float64(gi) / (m.PeakHalfFlops * m.TrainEfficiency),
				BwdTime:      j.FlopsPerBatch / float64(j.Batch) * 0.75 / float64(gi) / (m.PeakHalfFlops * m.TrainEfficiency),
				XferTime:     m.P2PTime(int64(2*j.Seq*j.Hidden), false),
			}
			times = append(times, simulate.SimulatePipeline(spec, false).Span)
		}
	}
	for i, gi := range []int{2, 4, 8, 16} {
		b.ReportMetric(times[i], "span-s/Ginter"+itoa(gi))
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}

// BenchmarkEndToEndParallelStep times one full hybrid-parallel training
// iteration (2×2 ranks, SAMO) on the real engine. One Train call drives
// b.N batches, so ns/op and allocs/op measure the steady-state per-batch
// cost: with the worker arenas, cache pools and pooled collective buffers
// the engine settles at 0 allocs/op (setup amortizes away).
func BenchmarkEndToEndParallelStep(b *testing.B) {
	for _, bc := range []struct {
		name    string
		overlap bool
	}{{"serial", false}, {"overlap", true}} {
		b.Run(bc.name, func(b *testing.B) {
			build := func() *nn.Model {
				return nn.BuildMLP("e2e", []int{64, 128, 64, 8}, tensor.NewRNG(5))
			}
			pr := samoPrune(build(), 0.9)
			batch := benchBatch(64, 16, 8)
			batches := make([]axonn.Batch, b.N)
			for i := range batches {
				batches[i] = batch
			}
			b.ReportAllocs()
			b.ResetTimer()
			axonn.Train(axonn.Config{Ginter: 2, Gdata: 2, Microbatch: 4, Mode: core.SAMO,
				OverlapReduce: bc.overlap},
				build, func() optim.Optimizer { return optim.NewAdam(1e-3) }, pr,
				batches)
		})
	}
}

// BenchmarkSerialTrainStep times the single-process trainer on the same
// model, asserting the zero-alloc steady state from the ns/op side.
func BenchmarkSerialTrainStep(b *testing.B) {
	model := nn.BuildMLP("serial", []int{64, 128, 64, 8}, tensor.NewRNG(5))
	pr := samoPrune(model, 0.9)
	state := core.NewModelState(model, optim.NewAdam(1e-3), core.SAMO, pr)
	tr := core.NewTrainer(state)
	batch := benchBatch(64, 16, 8)
	tr.TrainStep(batch.Input, batch.Targets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainStep(batch.Input, batch.Targets)
	}
}

// BenchmarkCompressExpandRoundTrip times SAMO's two primitives at a
// realistic layer size.
func BenchmarkCompressExpandRoundTrip(b *testing.B) {
	n := 1 << 20
	mask := sparse.NewMask(n)
	rng := tensor.NewRNG(7)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			mask.Set(i)
		}
	}
	ix := sparse.NewIndex(mask)
	dense := make([]float32, n)
	comp := make([]float32, ix.NNZ())
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Compress(comp, dense)
		ix.Expand(dense, comp)
	}
}

// --- helpers ----------------------------------------------------------------

func samoPrune(m *nn.Model, sparsity float64) *prune.Result {
	var layers []prune.Layer
	for _, e := range m.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	return prune.MagnitudePerLayer(layers, sparsity)
}

func benchBatch(inDim, samples, classes int) axonn.Batch {
	rng := tensor.NewRNG(9)
	x := tensor.New(samples, inDim)
	tensor.FillNormal(x, 1, rng)
	targets := make([]int, samples)
	for i := range targets {
		targets[i] = rng.Intn(classes)
	}
	return axonn.Batch{Input: x, Targets: targets, SampleRows: 1, Samples: samples}
}

var _ = samo.BreakEvenSparsity // keep the public package linked into benches
